(* Link failure and warm re-convergence.

     dune exec examples/link_failure.exe

   BGP's defining operational event is a session going down: both
   endpoints discard what they learned over it and withdrawals ripple out
   from the failure while the rest of the network keeps its (now possibly
   stale) routes.  This example converges a Gao-Rexford hierarchy, severs
   the busiest transit link, and re-converges from the wounded state under
   three BGP deployment styles, comparing against a cold start. *)

open Commrouting
open Engine

let model s = Option.get (Model.of_string s)

let () =
  let topo =
    Bgp.Topology.generate { Bgp.Topology.default_config with tier2 = 4; stubs = 6; seed = 11 }
  in
  let dest = Bgp.Topology.size topo - 1 in
  Format.printf "%a@.destination: %s@.@." Bgp.Topology.pp topo (Bgp.Topology.name topo dest);

  (* 1. Converge. *)
  let m0 = model "RMS" in
  let inst = Bgp.Policy.compile topo ~dest in
  let r0 = Executor.run ~validate:m0 inst (Scheduler.round_robin inst m0) in
  let final = Trace.final r0.Executor.trace in
  let before = State.assignment inst final in
  Format.printf "initial convergence: %a in %d steps@.routes: %a@.@." Executor.pp_stop
    r0.Executor.stop
    (Trace.length r0.Executor.trace)
    (Spp.Assignment.pp inst) before;

  (* 2. Find the busiest link: the first hop carrying the most routes. *)
  let uses = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let rec hops = function
        | a :: (b :: _ as rest) ->
          let key = (min a b, max a b) in
          Hashtbl.replace uses key (1 + Option.value ~default:0 (Hashtbl.find_opt uses key));
          hops rest
        | _ -> ()
      in
      hops (Spp.Path.to_nodes (Spp.Assignment.get before v)))
    (Spp.Instance.nodes inst);
  let (a, b), carried =
    Hashtbl.fold (fun k n (bk, bn) -> if n > bn then (k, n) else (bk, bn)) uses ((0, 0), 0)
  in
  Format.printf "severing the busiest link %s-%s (first hop of %d routes)@.@."
    (Bgp.Topology.name topo a) (Bgp.Topology.name topo b) carried;

  (* 3. Re-converge under three deployment styles. *)
  let topo', event = Bgp.Failure.sever topo ~dest ~state:final ~link:(a, b) in
  Format.printf "%-28s %-10s %-8s %-9s %-9s %-5s@." "deployment" "converged" "steps"
    "messages" "rerouted" "lost";
  List.iter
    (fun (name, mname) ->
      let r = Bgp.Failure.reconverge event ~before ~model:(model mname) in
      Format.printf "%-28s %-10b %-8d %-9d %-9d %-5d@." name r.Bgp.Failure.converged
        r.Bgp.Failure.steps r.Bgp.Failure.messages r.Bgp.Failure.rerouted r.Bgp.Failure.lost)
    [
      ("event-driven (R1O)", "R1O");
      ("queueing (RMS)", "RMS");
      ("route-refresh polling (REA)", "REA");
    ];

  (* 4. Cold-start comparison. *)
  let cold = Bgp.Simulate.run topo' ~dest ~model:m0 ~scheduler:Scheduler.round_robin in
  Format.printf "@.cold start on the failed topology (RMS): %d steps, %d messages@."
    cold.Bgp.Simulate.steps cold.Bgp.Simulate.messages;
  Format.printf
    "warm re-convergence touches only the affected region; withdrawals are the price.@."
