(* An ad-hoc wireless mesh under unreliable channels.

     dune exec examples/adhoc_mesh.exe

   The paper's abstract names AODV, and its taxonomy is "the first work to
   consider the algorithmic properties of interdomain routing over
   unreliable channels" — e.g. wireless networks without TCP.  This
   example builds a random geometric mesh with hop-count (AODV-flavored)
   ranking, runs it under the datagram queueing model UMS with a fair
   randomized schedule (message loss included), and then moves a node out
   of range, re-converging across the mobility event via state surgery. *)

open Commrouting
open Engine
open Spp

let model s = Option.get (Model.of_string s)

(* A deterministic "geometric" mesh: n nodes on a line with links between
   nodes at distance <= 2, destination at one end — a corridor of relays. *)
let corridor ~n ~broken =
  let names = Array.init n (fun i -> if i = 0 then "d" else Printf.sprintf "n%d" i) in
  let edges =
    List.concat
      (List.init n (fun i ->
           List.filter_map
             (fun j ->
               if j > i && j - i <= 2 && not (List.mem (i, j) broken) then Some (i, j)
               else None)
             (List.init n Fun.id)))
  in
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  let paths_of v =
    let acc = ref [] in
    let rec explore path u len =
      if u = 0 then acc := List.rev path :: !acc
      else if len < 6 then
        List.iter
          (fun w -> if not (List.mem w path) then explore (w :: path) w (len + 1))
          adj.(u)
    in
    explore [ v ] v 0;
    List.sort (fun p q -> compare (List.length p, p) (List.length q, q)) !acc
  in
  Instance.make ~names ~dest:0 ~edges
    ~permitted:(List.init (n - 1) (fun i -> (i + 1, paths_of (i + 1))))

let stats inst ~seeds =
  Stats.across_seeds inst
    ~scheduler:(fun ~seed -> Scheduler.random inst (model "UMS") ~seed)
    ~seeds

let () =
  let n = 7 in
  let inst = corridor ~n ~broken:[] in
  Format.printf "%a@." Instance.pp inst;
  Format.printf "dispute wheel: %b (hop-count ranking is safe)@.@."
    (Dispute.has_wheel inst);

  Format.printf "== datagram convergence (UMS, random schedules with loss) ==@.";
  Format.printf "  %a@." Stats.pp_summary (stats inst ~seeds:[ 1; 2; 3; 4; 5 ]);
  Format.printf
    "  ('stale' runs parked in a dead end after losing a final update - the@.\
    \  executions Def. 2.4's fairness condition excludes; see DESIGN.md)@.@.";

  (* Converge once deterministically, then break two of n2's links (it
     drifted out of range), transplant the state, and re-converge. *)
  let m = model "UMS" in
  let r = Executor.run ~validate:m inst (Scheduler.round_robin inst m) in
  let final = Trace.final r.Executor.trace in
  Format.printf "== mobility event: n2 drifts out of range of d and n3 ==@.";
  let inst' = corridor ~n ~broken:[ (0, 2); (2, 3) ] in
  let st = Surgery.transplant ~old_instance:inst ~new_instance:inst' final in
  let r' =
    Executor.run_from ~state:st ~max_steps:5_000 inst' (Scheduler.round_robin inst' m)
  in
  Format.printf "re-convergence: %a in %d steps@." Executor.pp_stop r'.Executor.stop
    (Trace.length r'.Executor.trace);
  let after = State.assignment inst' (Trace.final r'.Executor.trace) in
  Format.printf "new routes: %a@." (Assignment.pp inst') after;
  Format.printf "stable solution of the new mesh: %b@."
    (Assignment.is_solution inst' after)
