(* BGP convergence across communication models.

     dune exec examples/bgp_convergence.exe

   Generates a three-tier Gao-Rexford AS hierarchy, compiles its policies
   into an SPP instance (provably dispute-wheel-free), and measures
   steps/messages to convergence under the BGP deployment presets of
   Sec. 2.3/4: event-driven R1O, specification-queueing RMS, route-refresh
   polling REA, and datagram UMS. *)

open Commrouting
open Engine

let () =
  let topo = Bgp.Topology.generate { Bgp.Topology.default_config with tier2 = 4; stubs = 6; seed = 2026 } in
  Format.printf "%a@." Bgp.Topology.pp topo;
  let dest = Bgp.Topology.size topo - 1 in
  Format.printf "Destination prefix originated by %s@.@." (Bgp.Topology.name topo dest);

  let inst = Bgp.Policy.compile topo ~dest in
  Format.printf "Compiled SPP instance: %d nodes, %d permitted paths, dispute wheel: %b@.@."
    (Spp.Instance.size inst)
    (List.length (Spp.Instance.all_permitted inst))
    (Spp.Dispute.has_wheel inst);

  Format.printf "%-42s %-6s %-10s %-8s %-9s@." "BGP configuration" "model" "converged"
    "steps" "messages";
  List.iter
    (fun (name, cfg) ->
      let model = Bgp.Config_map.model_of cfg in
      let r =
        Bgp.Simulate.run topo ~dest ~model ~scheduler:Scheduler.round_robin
      in
      Format.printf "%-42s %-6s %-10b %-8d %-9d@." name (Model.to_string model)
        r.Bgp.Simulate.converged r.Bgp.Simulate.steps r.Bgp.Simulate.messages)
    Bgp.Config_map.presets;

  (* The export policy ("announce peer/provider routes to customers only")
     is what keeps the message count down; compare with promiscuous
     flooding: *)
  let with_policy =
    Bgp.Simulate.run topo ~dest ~model:(Option.get (Model.of_string "RMS"))
      ~scheduler:Scheduler.round_robin
  in
  let without =
    Bgp.Simulate.run ~use_export_policy:false topo ~dest
      ~model:(Option.get (Model.of_string "RMS"))
      ~scheduler:Scheduler.round_robin
  in
  Format.printf "@.Export-policy effect (RMS): %d messages with Gao-Rexford export, %d without@."
    with_policy.Bgp.Simulate.messages without.Bgp.Simulate.messages;

  (* Every model converges on Gao-Rexford inputs: the no-dispute-wheel
     sufficient condition is model-independent because the queueing models
     realize all others (Sec. 3.5). *)
  Format.printf "@.Convergence across all 24 models: %b@."
    (Bgp.Simulate.converges_in_all_models topo ~dest)
