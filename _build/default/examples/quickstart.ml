(* Quickstart: the DISAGREE network (Fig. 5 of the paper) run under two
   communication models.

     dune exec examples/quickstart.exe

   Under the event-driven message-passing model R1O a fair schedule can make
   DISAGREE oscillate forever; under the polling model RMA every fair
   schedule converges.  This is the paper's headline phenomenon:
   convergence depends on the communication model. *)

open Commrouting
open Engine

let model name = Option.get (Model.of_string name)

let () =
  let inst = Spp.Gadgets.disagree in
  Format.printf "== The DISAGREE instance (Fig. 5) ==@.%a@.@." Spp.Instance.pp inst;

  (* 1. Its stable solutions, found by the (NP-complete) solver. *)
  let solutions = Spp.Solver.solutions inst in
  Format.printf "Stable solutions: %d@." (List.length solutions);
  List.iter
    (fun a -> Format.printf "  %a@." (Spp.Assignment.pp inst) a)
    solutions;
  Format.printf "Dispute wheel present: %b@.@." (Spp.Dispute.has_wheel inst);

  (* 2. An oscillating R1O execution, scripted as in Ex. A.1: d announces,
     x and y adopt the direct routes, then they alternate reading each
     other's (stale) announcements. *)
  let chan a b =
    Channel.id ~src:(Spp.Gadgets.node inst a) ~dst:(Spp.Gadgets.node inst b)
  in
  let read1 a b = Activation.read ~count:(Activation.Finite 1) (chan a b) in
  let act c reads = Activation.single (Spp.Gadgets.node inst c) reads in
  let prefix =
    [ act 'd' [ read1 'x' 'd' ]; act 'x' [ read1 'd' 'x' ]; act 'y' [ read1 'd' 'y' ] ]
  in
  let cycle =
    [
      act 'x' [ read1 'y' 'x' ];
      act 'y' [ read1 'x' 'y' ];
      act 'x' [ read1 'd' 'x' ];
      act 'y' [ read1 'd' 'y' ];
      act 'd' [ read1 'x' 'd' ];
    ]
  in
  let r =
    Executor.run ~validate:(model "R1O") ~max_steps:60 inst
      (Scheduler.prefixed prefix cycle)
  in
  Format.printf "== R1O, scripted fair schedule ==@.";
  Format.printf "%s@." (Trace.paper_table r.Executor.trace);
  Format.printf "Outcome: %a@.@." Executor.pp_stop r.Executor.stop;

  (* 3. The polling model RMA under the canonical fair round-robin
     schedule: guaranteed convergence (Ex. A.1's analysis). *)
  let r =
    Executor.run ~validate:(model "RMA") inst (Scheduler.round_robin inst (model "RMA"))
  in
  Format.printf "== RMA, round-robin schedule ==@.";
  Format.printf "%s@." (Trace.paper_table r.Executor.trace);
  Format.printf "Outcome: %a@." Executor.pp_stop r.Executor.stop;
  let final = State.assignment inst (Trace.final r.Executor.trace) in
  Format.printf "Final assignment: %a (stable solution: %b)@." (Spp.Assignment.pp inst)
    final
    (Spp.Assignment.is_solution inst final);

  (* 4. The model checker proves the RMA claim exhaustively. *)
  Format.printf "@.== Exhaustive verdicts (bounded model checker) ==@.";
  List.iter
    (fun name ->
      let v = Modelcheck.Oscillation.analyze inst (model name) in
      Format.printf "  %s: %a@." name Modelcheck.Oscillation.pp_verdict v)
    [ "R1O"; "RMS"; "REO"; "RMA"; "REA" ]
