(* Machine-readable state-space-exploration benchmarks.

   Runs each (instance, model) case once sequentially (domains=1) and once
   on a worker pool (domains=N), checks that verdicts and reachable-state
   counts agree, and renders everything as BENCH_explore.json so the perf
   trajectory is tracked across PRs.  Schema: see EXPERIMENTS.md. *)

open Spp
open Engine
module Json = Metrics.Json

let schema = "commrouting/bench_explore/v1"

let model s = Option.get (Model.of_string s)

type case = {
  instance_name : string;
  inst : Instance.t;
  m : Model.t;
  config : Modelcheck.Explore.config;
}

let case ?(config = Modelcheck.Explore.default_config) instance_name inst mname =
  { instance_name; inst; m = model mname; config }

(* The fast subset runs in well under a second; the deep cases are the Fig. 6
   exhaustive polling runs the paper harness also performs (~90s each). *)
let fast_cases () =
  [
    case "DISAGREE" Gadgets.disagree "R1O";
    case "DISAGREE" Gadgets.disagree "REA";
    case "DISAGREE" Gadgets.disagree "UMS";
    case "FIG6" Gadgets.fig6 "REA";
  ]

let deep_cases () = [ case "FIG6" Gadgets.fig6 "R1A"; case "FIG6" Gadgets.fig6 "RMA" ]

type run = {
  domains : int;
  states : int;
  edges : int;
  wall_s : float;
  states_per_sec : float;
  dedup_rate : float;
  peak_frontier : int;
  pruned : bool;
  truncated : bool;
  verdict : string;
}

let run_one c ~domains =
  let metrics = Metrics.create () in
  let graph = Modelcheck.Explore.explore ~config:c.config ~domains ~metrics c.inst c.m in
  let verdict =
    Metrics.timed ~m:metrics "analyze" (fun () ->
        Modelcheck.Oscillation.verdict_name
          (Modelcheck.Oscillation.analyze_graph c.inst graph))
  in
  {
    domains;
    states = Array.length graph.Modelcheck.Explore.states;
    edges = Metrics.edges metrics;
    wall_s = Metrics.phase_time metrics "explore";
    states_per_sec = Metrics.states_per_sec metrics;
    dedup_rate = Metrics.dedup_rate metrics;
    peak_frontier = Metrics.peak_frontier metrics;
    pruned = graph.Modelcheck.Explore.pruned;
    truncated = graph.Modelcheck.Explore.truncated;
    verdict;
  }

let json_of_run r =
  Json.Obj
    [
      ("domains", Json.Num (float_of_int r.domains));
      ("states", Json.Num (float_of_int r.states));
      ("edges", Json.Num (float_of_int r.edges));
      ("wall_s", Json.Num r.wall_s);
      ("states_per_sec", Json.Num r.states_per_sec);
      ("dedup_rate", Json.Num r.dedup_rate);
      ("peak_frontier", Json.Num (float_of_int r.peak_frontier));
      ("pruned", Json.Bool r.pruned);
      ("truncated", Json.Bool r.truncated);
      ("verdict", Json.Str r.verdict);
    ]

type case_result = {
  c : case;
  runs : run list;
  agree : bool; (* verdicts and state counts identical across domain counts *)
}

let run_case ~domains_list c =
  let runs = List.map (fun d -> run_one c ~domains:d) domains_list in
  let agree =
    match runs with
    | [] -> true
    | r0 :: rest ->
      List.for_all
        (fun r -> String.equal r.verdict r0.verdict && r.states = r0.states)
        rest
  in
  { c; runs; agree }

let json_of_case_result cr =
  let speedup =
    match
      ( List.find_opt (fun r -> r.domains = 1) cr.runs,
        List.find_opt (fun r -> r.domains > 1) cr.runs )
    with
    | Some seq, Some par when par.wall_s > 0. -> Some (seq.wall_s /. par.wall_s)
    | _ -> None
  in
  Json.Obj
    ([
       ("instance", Json.Str cr.c.instance_name);
       ("model", Json.Str (Model.to_string cr.c.m));
       ("channel_bound", Json.Num (float_of_int cr.c.config.Modelcheck.Explore.channel_bound));
       ("max_states", Json.Num (float_of_int cr.c.config.Modelcheck.Explore.max_states));
       ("runs", Json.List (List.map json_of_run cr.runs));
       ("agree", Json.Bool cr.agree);
     ]
    @ match speedup with None -> [] | Some s -> [ ("speedup", Json.Num s) ])

(* [par_domains]: DOMAINS when set and > 1, else 2 — there is always one
   parallel setting to compare against the sequential baseline. *)
let par_domains () = max 2 (Modelcheck.Explore.default_domains ())

let run_all ~deep ~domains =
  let domains_list = [ 1; domains ] in
  let cases = fast_cases () @ (if deep then deep_cases () else []) in
  List.map (run_case ~domains_list) cases

let to_json ~deep ~domains results =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("deep", Json.Bool deep);
      ("domains_compared", Json.List [ Json.Num 1.; Json.Num (float_of_int domains) ]);
      ("cases", Json.List (List.map json_of_case_result results));
    ]

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* Runs the suite, writes [path], validates that the artifact re-parses and
   that every case agreed across domain counts.  Returns the failures. *)
let emit ?(path = "BENCH_explore.json") ~deep ~domains () =
  let results = run_all ~deep ~domains in
  let text = Json.to_string (to_json ~deep ~domains results) in
  write_file path text;
  let parse_failure =
    match Json.parse text with
    | Ok v ->
      if Json.member "cases" v = None then [ "emitted JSON lacks a cases field" ] else []
    | Error e -> [ "emitted JSON does not parse: " ^ e ]
  in
  let disagreements =
    List.filter_map
      (fun cr ->
        if cr.agree then None
        else
          Some
            (Printf.sprintf "%s/%s: domains disagree on verdict or state count"
               cr.c.instance_name (Model.to_string cr.c.m)))
      results
  in
  (results, parse_failure @ disagreements)

let pp_summary ppf results =
  List.iter
    (fun cr ->
      List.iter
        (fun r ->
          Fmt.pf ppf "  %-9s %-4s domains=%d states=%-7d %8.0f states/s (%.2fs) %s@."
            cr.c.instance_name (Model.to_string cr.c.m) r.domains r.states
            r.states_per_sec r.wall_s r.verdict)
        cr.runs)
    results
