(* Standalone entry point for the explore benchmark: writes the
   BENCH_explore.json artifact and exits nonzero if the artifact fails to
   parse or the domain settings disagree on any verdict/state count.  Used
   by the @bench-smoke dune alias (with DEEP=0) and runnable by hand for
   the full Fig. 6 R1A/RMA measurements. *)

let () =
  let path = ref "BENCH_explore.json" in
  let domains = ref (Explore_bench.par_domains ()) in
  let deep =
    ref
      (match Sys.getenv_opt "DEEP" with
      | Some "0" -> false
      | Some _ | None -> true)
  in
  let rec parse_args = function
    | [] -> ()
    | "-o" :: p :: rest ->
      path := p;
      parse_args rest
    | "--domains" :: n :: rest ->
      (match int_of_string_opt n with
      | Some d when d >= 2 -> domains := d
      | _ -> prerr_endline "bench_explore: --domains expects an int >= 2"; exit 2);
      parse_args rest
    | "--fast" :: rest ->
      deep := false;
      parse_args rest
    | arg :: _ ->
      Printf.eprintf "bench_explore: unknown argument %s\n" arg;
      Printf.eprintf "usage: bench_explore [-o FILE] [--domains N] [--fast]\n";
      exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let results, failures = Explore_bench.emit ~path:!path ~deep:!deep ~domains:!domains () in
  Format.printf "explore bench (domains 1 vs %d):@." !domains;
  Explore_bench.pp_summary Format.std_formatter results;
  Format.printf "wrote %s@." !path;
  match failures with
  | [] -> ()
  | fs ->
    List.iter (fun f -> Printf.eprintf "FAIL: %s\n" f) fs;
    exit 1
