bench/bench_explore.mli:
