bench/main.mli:
