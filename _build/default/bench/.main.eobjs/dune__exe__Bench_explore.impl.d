bench/bench_explore.ml: Array Explore_bench Format List Printf Sys
