bench/explore_bench.ml: Array Engine Fmt Fun Gadgets Instance List Metrics Model Modelcheck Option Printf Spp String
