(* Tests for the routing-algebra layer: compilation to SPP instances and
   convergence of the stock algebras under the communication models. *)

open Spp
open Engine

let model s = Option.get (Model.of_string s)

(* A small labeled graph: a square with a diagonal, destination 0.

        1 --- 0
        |   / |
        2 --- 3
*)
let square ~label =
  {
    Algebra.names = [| "d"; "a"; "b"; "c" |];
    dest = 0;
    links =
      List.map
        (fun (u, v) -> (u, v, label u v, label v u))
        [ (0, 1); (0, 2); (0, 3); (1, 2); (2, 3) ];
  }

let test_shortest_paths_compile () =
  let g = square ~label:(fun _ _ -> 1) in
  let inst = Algebra.compile Algebra.shortest_paths g in
  Alcotest.(check (list (of_pp Fmt.nop))) "valid" [] (Instance.validate inst);
  (* a prefers its direct 1-hop route *)
  (match Instance.permitted inst 1 with
  | best :: _ -> Alcotest.(check (list int)) "direct first" [ 1; 0 ] (Path.to_nodes best)
  | [] -> Alcotest.fail "no routes");
  Alcotest.(check bool) "wheel-free" false (Dispute.has_wheel inst);
  Alcotest.(check bool) "solvable" true (Solver.is_solvable inst)

let test_shortest_paths_weighted () =
  (* Make the direct link from a to d expensive: a should prefer a-b-d. *)
  let g =
    square ~label:(fun u v -> if (u = 1 && v = 0) || (u = 0 && v = 1) then 10 else 1)
  in
  let inst = Algebra.compile Algebra.shortest_paths g in
  match Instance.permitted inst 1 with
  | best :: _ -> Alcotest.(check (list int)) "detour first" [ 1; 2; 0 ] (Path.to_nodes best)
  | [] -> Alcotest.fail "no routes"

let test_widest_paths () =
  (* Capacities: direct a-d is thin (1), a-b fat (10), b-d fat (10). *)
  let cap u v =
    match (min u v, max u v) with
    | 0, 1 -> 1
    | _ -> 10
  in
  let g = square ~label:cap in
  let inst = Algebra.compile Algebra.widest_paths g in
  (match Instance.permitted inst 1 with
  | best :: _ ->
    Alcotest.(check (list int)) "fat path first" [ 1; 2; 0 ] (Path.to_nodes best)
  | [] -> Alcotest.fail "no routes");
  Alcotest.(check bool) "solvable" true (Solver.is_solvable inst)

let test_gao_rexford_algebra_matches_policy () =
  (* The algebraic Gao-Rexford compilation must agree with the direct
     Policy.compile on the same topology. *)
  let topo = Bgp.Topology.generate { Bgp.Topology.default_config with seed = 13 } in
  let dest = Bgp.Topology.size topo - 1 in
  let n = Bgp.Topology.size topo in
  let to_label u v =
    (* label used when u extends a route beginning at v: v's relationship
       as seen from u *)
    match Bgp.Topology.relationship topo ~of_:u v with
    | Some Bgp.Topology.Customer -> Algebra.label_customer
    | Some Bgp.Topology.Peer -> Algebra.label_peer
    | Some Bgp.Topology.Provider -> Algebra.label_provider
    | None -> invalid_arg "not adjacent"
  in
  let g =
    {
      Algebra.names = Bgp.Topology.names topo;
      dest;
      links =
        List.map
          (fun (a, b, _) -> (a, b, to_label a b, to_label b a))
          (Bgp.Topology.edges topo);
    }
  in
  let algebraic = Algebra.compile ~max_len:n Algebra.gao_rexford g in
  let direct = Bgp.Policy.compile topo ~dest in
  (* Same permitted sets in the same preference order at every node. *)
  List.iter
    (fun v ->
      let show i =
        List.map (Path.to_string ~names:(Instance.names i)) (Instance.permitted i v)
      in
      Alcotest.(check (list string))
        (Printf.sprintf "node %d" v)
        (show direct) (show algebraic))
    (Instance.nodes direct)

let test_monotone_algebras_converge_everywhere () =
  let g = square ~label:(fun _ _ -> 1) in
  List.iter
    (fun inst ->
      Alcotest.(check bool) "wheel-free" false (Dispute.has_wheel inst);
      List.iter
        (fun mname ->
          let m = model mname in
          let r = Executor.run ~validate:m inst (Scheduler.round_robin inst m) in
          Alcotest.(check bool) "converges" true (r.Executor.stop = Executor.Quiescent))
        [ "R1O"; "RMS"; "REA"; "UMS" ])
    [
      Algebra.compile Algebra.shortest_paths g;
      Algebra.compile Algebra.widest_paths g;
    ]

let test_lex_product () =
  (* Widest-shortest: prefer capacity, break ties by hop count.  With all
     capacities equal, it degenerates to shortest paths. *)
  let alg =
    Algebra.lex ~name:"widest-shortest" Algebra.widest_paths Algebra.shortest_paths
  in
  let g = square ~label:(fun _ _ -> 1) in
  let inst = Algebra.compile alg g in
  (match Instance.permitted inst 1 with
  | best :: _ -> Alcotest.(check (list int)) "direct first" [ 1; 0 ] (Path.to_nodes best)
  | [] -> Alcotest.fail "no routes");
  Alcotest.(check bool) "solvable" true (Solver.is_solvable inst)

let test_unsupported_paths_excluded () =
  (* Under Gao-Rexford labels, a peer-peer-peer chain is not supported. *)
  let g =
    {
      Algebra.names = [| "d"; "p"; "q" |];
      dest = 0;
      links =
        [
          (* d -- p peers, p -- q peers *)
          (0, 1, Algebra.label_peer, Algebra.label_peer);
          (1, 2, Algebra.label_peer, Algebra.label_peer);
        ];
    }
  in
  let inst = Algebra.compile Algebra.gao_rexford g in
  (* p reaches d directly (one peer hop), but q cannot: qpd needs p to
     export a peer route to a peer. *)
  Alcotest.(check int) "p has a route" 1 (List.length (Instance.permitted inst 1));
  Alcotest.(check int) "q has none" 0 (List.length (Instance.permitted inst 2))

let () =
  Alcotest.run "algebra"
    [
      ( "stock",
        [
          Alcotest.test_case "shortest paths" `Quick test_shortest_paths_compile;
          Alcotest.test_case "weighted shortest paths" `Quick test_shortest_paths_weighted;
          Alcotest.test_case "widest paths" `Quick test_widest_paths;
          Alcotest.test_case "Gao-Rexford algebra = policy compile" `Quick
            test_gao_rexford_algebra_matches_policy;
          Alcotest.test_case "monotone algebras converge" `Quick
            test_monotone_algebras_converge_everywhere;
          Alcotest.test_case "lexicographic product" `Quick test_lex_product;
          Alcotest.test_case "unsupported paths excluded" `Quick
            test_unsupported_paths_excluded;
        ] );
    ]
