(* Tests for the BGP substrate: topologies, Gao-Rexford policy compilation,
   the taxonomy mapping, and end-to-end convergence. *)

open Spp
open Engine
open Bgp

let model s = Option.get (Model.of_string s)

(* A small hand-built topology:
     T1 -- T2         (peering)
     T1 -> M1, T2 -> M2 (provider -> customer)
     M1 -- M2         (peering)
     M1 -> S, M2 -> S (provider -> customer)
   Destination: S. *)
let small () =
  Topology.make
    ~names:[| "T1"; "T2"; "M1"; "M2"; "S" |]
    ~links:
      [
        (0, 1, Topology.Peer_peer);
        (0, 2, Topology.Provider_customer);
        (1, 3, Topology.Provider_customer);
        (2, 3, Topology.Peer_peer);
        (2, 4, Topology.Provider_customer);
        (3, 4, Topology.Provider_customer);
      ]

let test_topology_basics () =
  let t = small () in
  Alcotest.(check int) "size" 5 (Topology.size t);
  Alcotest.(check (list int)) "neighbors of M1" [ 0; 3; 4 ] (Topology.neighbors t 2);
  Alcotest.(check bool) "T1 sees M1 as customer" true
    (Topology.relationship t ~of_:0 2 = Some Topology.Customer);
  Alcotest.(check bool) "M1 sees T1 as provider" true
    (Topology.relationship t ~of_:2 0 = Some Topology.Provider);
  Alcotest.(check bool) "M1/M2 peers" true
    (Topology.relationship t ~of_:2 3 = Some Topology.Peer);
  Alcotest.(check bool) "not adjacent" true (Topology.relationship t ~of_:0 4 = None)

let test_topology_rejects_cycles () =
  try
    ignore
      (Topology.make ~names:[| "a"; "b"; "c" |]
         ~links:
           [
             (0, 1, Topology.Provider_customer);
             (1, 2, Topology.Provider_customer);
             (2, 0, Topology.Provider_customer);
           ]);
    Alcotest.fail "expected cycle rejection"
  with Invalid_argument _ -> ()

let test_route_class () =
  let t = small () in
  let p nodes = Path.of_nodes nodes in
  Alcotest.(check bool) "customer route" true
    (Policy.route_class t 2 (p [ 2; 4 ]) = Some Policy.Customer_route);
  Alcotest.(check bool) "peer route" true
    (Policy.route_class t 2 (p [ 2; 3; 4 ]) = Some Policy.Peer_route);
  Alcotest.(check bool) "provider route" true
    (Policy.route_class t 2 (p [ 2; 0; 1; 3; 4 ]) = Some Policy.Provider_route);
  Alcotest.(check bool) "origin" true (Policy.route_class t 4 (p [ 4 ]) = Some Policy.Origin)

let test_export_rules () =
  let t = small () in
  let p nodes = Path.of_nodes nodes in
  (* M1's customer route to S goes to everyone. *)
  Alcotest.(check bool) "customer route to provider" true
    (Policy.exports t 2 (p [ 2; 4 ]) ~to_:0);
  Alcotest.(check bool) "customer route to peer" true
    (Policy.exports t 2 (p [ 2; 4 ]) ~to_:3);
  (* M1's peer route via M2 goes to customers only. *)
  Alcotest.(check bool) "peer route to provider refused" false
    (Policy.exports t 2 (p [ 2; 3; 4 ]) ~to_:0);
  Alcotest.(check bool) "peer route to customer" true
    (Policy.exports t 2 (p [ 2; 3; 4 ]) ~to_:4)

let test_gr_permitted_valley_free () =
  let t = small () in
  (* T1's routes to S must not contain a valley (down then up). *)
  let routes = Policy.gr_permitted t ~dest:4 0 in
  Alcotest.(check bool) "T1 has a route" true (routes <> []);
  List.iter
    (fun p ->
      Alcotest.(check bool) "simple" true (Path.is_simple p);
      (* no valley: once the path goes to a customer or peer, it never goes
         back up through a provider or peer *)
      let rec phases going_down = function
        | a :: (b :: _ as rest) ->
          (match Topology.relationship t ~of_:a b with
          | Some Topology.Customer -> phases true rest
          | Some Topology.Peer | Some Topology.Provider ->
            if going_down then Alcotest.failf "valley in %a" (Instance.pp_path (Policy.compile t ~dest:4)) p
            else phases (Topology.relationship t ~of_:a b = Some Topology.Peer) rest
          | None -> Alcotest.fail "non-adjacent hop")
        | _ -> ()
      in
      ignore (phases false (Path.to_nodes p)))
    routes

let test_gr_preference_order () =
  let t = small () in
  (* M1 prefers its direct customer route to S over the peer route via M2. *)
  match Policy.gr_permitted t ~dest:4 2 with
  | best :: _ ->
    Alcotest.(check (list int)) "customer route first" [ 2; 4 ] (Path.to_nodes best)
  | [] -> Alcotest.fail "M1 has no routes"

let test_compile_validates () =
  let t = small () in
  let inst = Policy.compile t ~dest:4 in
  Alcotest.(check (list (of_pp Fmt.nop))) "valid instance" [] (Instance.validate inst);
  Alcotest.(check bool) "no dispute wheel" false (Dispute.has_wheel inst)

let test_generated_topologies_wheel_free () =
  List.iter
    (fun seed ->
      let topo = Topology.generate { Topology.default_config with seed } in
      let dest = Topology.size topo - 1 in
      let inst = Policy.compile topo ~dest in
      Alcotest.(check (list (of_pp Fmt.nop)))
        (Printf.sprintf "valid (seed %d)" seed)
        [] (Instance.validate inst);
      if Dispute.has_wheel inst then
        Alcotest.failf "Gao-Rexford instance has a dispute wheel (seed %d)" seed)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_small_converges_all_models () =
  let t = small () in
  Alcotest.(check bool) "converges in all 24 models" true
    (Simulate.converges_in_all_models t ~dest:4)

let test_generated_converges () =
  List.iter
    (fun seed ->
      let topo = Topology.generate { Topology.default_config with seed } in
      let dest = Topology.size topo - 1 in
      List.iter
        (fun mname ->
          let r =
            Simulate.run topo ~dest ~model:(model mname)
              ~scheduler:Scheduler.round_robin
          in
          Alcotest.(check bool)
            (Printf.sprintf "converges %s (seed %d)" mname seed)
            true r.Simulate.converged;
          let inst = Policy.compile topo ~dest in
          Alcotest.(check bool)
            (Printf.sprintf "stable solution %s (seed %d)" mname seed)
            true
            (Assignment.is_solution inst r.Simulate.assignment))
        [ "R1O"; "RMS"; "REA"; "UMS" ])
    [ 11; 12; 13 ]

let test_export_policy_reduces_messages () =
  let t = small () in
  let with_policy =
    Simulate.run t ~dest:4 ~model:(model "RMS") ~scheduler:Scheduler.round_robin
  in
  let without =
    Simulate.run ~use_export_policy:false t ~dest:4 ~model:(model "RMS")
      ~scheduler:Scheduler.round_robin
  in
  Alcotest.(check bool) "both converge" true
    (with_policy.Simulate.converged && without.Simulate.converged);
  Alcotest.(check bool) "policy sends no more messages" true
    (with_policy.Simulate.messages <= without.Simulate.messages)

let test_config_mapping () =
  List.iter
    (fun (name, expected) ->
      let cfg = List.assoc name Config_map.presets in
      Alcotest.(check string) name expected (Config_map.describe cfg))
    [
      ("classic event-driven BGP", "R1O");
      ("BGP-4 specification queueing", "RMS");
      ("route-refresh polling", "REA");
      ("datagram path-vector (ad-hoc networks)", "UMS");
      ("per-session timer batching", "R1S");
    ]

let test_random_scheduler_on_bgp () =
  let topo = Topology.generate { Topology.default_config with seed = 42 } in
  let dest = Topology.size topo - 1 in
  let r =
    Simulate.run topo ~dest ~model:(model "RMS")
      ~scheduler:(fun inst m -> Scheduler.random inst m ~seed:5)
  in
  Alcotest.(check bool) "random schedule converges" true r.Simulate.converged


(* ------------------------------------------------------------------ *)
(* Property tests over generated topologies *)

let gen_seed = QCheck2.Gen.int_range 0 99_999

let prop_relationships_dual =
  QCheck2.Test.make ~name:"relationship views are dual" ~count:50 gen_seed (fun seed ->
      let t = Topology.generate { Topology.default_config with seed } in
      List.for_all
        (fun u ->
          List.for_all
            (fun v ->
              match (Topology.relationship t ~of_:u v, Topology.relationship t ~of_:v u) with
              | Some Topology.Customer, Some Topology.Provider -> true
              | Some Topology.Provider, Some Topology.Customer -> true
              | Some Topology.Peer, Some Topology.Peer -> true
              | None, None -> true
              | _ -> false)
            (List.init (Topology.size t) Fun.id))
        (List.init (Topology.size t) Fun.id))

let prop_permitted_are_exportable_chains =
  QCheck2.Test.make ~name:"gr_permitted paths are exportable at every hop" ~count:30
    gen_seed (fun seed ->
      let t = Topology.generate { Topology.default_config with seed } in
      let dest = Topology.size t - 1 in
      List.for_all
        (fun v ->
          List.for_all
            (fun p ->
              let rec ok = function
                | pred :: (next :: _ as rest) ->
                  Policy.exports t next (Path.of_nodes rest) ~to_:pred && ok rest
                | _ -> true
              in
              ok (Path.to_nodes p))
            (Policy.gr_permitted t ~dest v))
        (List.init (Topology.size t) Fun.id))

let prop_customer_routes_first =
  QCheck2.Test.make ~name:"customer routes always outrank peer/provider routes"
    ~count:30 gen_seed (fun seed ->
      let t = Topology.generate { Topology.default_config with seed } in
      let dest = Topology.size t - 1 in
      List.for_all
        (fun v ->
          let routes = Policy.gr_permitted t ~dest v in
          let classes =
            List.filter_map (fun p -> Policy.route_class t v p) routes
          in
          (* once a non-customer class appears, no later customer class *)
          let rec check seen_non_customer = function
            | [] -> true
            | Policy.Customer_route :: rest -> (not seen_non_customer) && check false rest
            | (Policy.Peer_route | Policy.Provider_route) :: rest -> check true rest
            | Policy.Origin :: rest -> check seen_non_customer rest
          in
          check false classes)
        (List.init (Topology.size t) Fun.id))

let prop_stub_destination_reachable =
  QCheck2.Test.make ~name:"every AS reaches the stub destination" ~count:30 gen_seed
    (fun seed ->
      let t = Topology.generate { Topology.default_config with seed } in
      let dest = Topology.size t - 1 in
      List.for_all
        (fun v -> v = dest || Policy.gr_permitted t ~dest v <> [])
        (List.init (Topology.size t) Fun.id))

let bgp_properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_relationships_dual;
      prop_permitted_are_exportable_chains;
      prop_customer_routes_first;
      prop_stub_destination_reachable;
    ]

let () =
  Alcotest.run "bgp"
    [
      ( "topology",
        [
          Alcotest.test_case "basics" `Quick test_topology_basics;
          Alcotest.test_case "rejects hierarchy cycles" `Quick test_topology_rejects_cycles;
        ] );
      ( "policy",
        [
          Alcotest.test_case "route classes" `Quick test_route_class;
          Alcotest.test_case "export rules" `Quick test_export_rules;
          Alcotest.test_case "valley-free permitted paths" `Quick
            test_gr_permitted_valley_free;
          Alcotest.test_case "preference order" `Quick test_gr_preference_order;
          Alcotest.test_case "compiled instance validates" `Quick test_compile_validates;
          Alcotest.test_case "generated topologies wheel-free" `Quick
            test_generated_topologies_wheel_free;
        ] );
      ( "simulate",
        [
          Alcotest.test_case "small topology, all 24 models" `Quick
            test_small_converges_all_models;
          Alcotest.test_case "generated topologies converge" `Slow test_generated_converges;
          Alcotest.test_case "export policy reduces messages" `Quick
            test_export_policy_reduces_messages;
          Alcotest.test_case "random scheduler" `Quick test_random_scheduler_on_bgp;
        ] );
      ( "config-map",
        [ Alcotest.test_case "BGP options to models" `Quick test_config_mapping ] );
      ("topology-properties", bgp_properties);
    ]
