(* Tests for link failure / re-convergence (Bgp.Failure) and the analysis
   report (Modelcheck.Report). *)

open Spp
open Engine
open Bgp

let model s = Option.get (Model.of_string s)

(* The small topology of test_bgp.ml: S is dual-homed to M1 and M2. *)
let small () =
  Topology.make
    ~names:[| "T1"; "T2"; "M1"; "M2"; "S" |]
    ~links:
      [
        (0, 1, Topology.Peer_peer);
        (0, 2, Topology.Provider_customer);
        (1, 3, Topology.Provider_customer);
        (2, 3, Topology.Peer_peer);
        (2, 4, Topology.Provider_customer);
        (3, 4, Topology.Provider_customer);
      ]

let converge topo ~dest ~model:m =
  let inst = Policy.compile topo ~dest in
  let r = Executor.run ~validate:m inst (Scheduler.round_robin inst m) in
  match r.Executor.stop with
  | Executor.Quiescent -> (inst, Trace.final r.Executor.trace)
  | s -> Alcotest.failf "did not converge: %a" Executor.pp_stop s

let test_sever_and_reconverge () =
  let topo = small () in
  let m = model "RMS" in
  let inst, final = converge topo ~dest:4 ~model:m in
  let before = State.assignment inst final in
  (* Kill the M1-S session; S stays reachable through M2. *)
  let _topo', event = Failure.sever topo ~dest:4 ~state:final ~link:(2, 4) in
  let r = Failure.reconverge event ~before ~model:m in
  Alcotest.(check bool) "re-converged" true r.Failure.converged;
  Alcotest.(check bool) "new assignment is a solution" true
    (Assignment.is_solution event.Failure.instance r.Failure.assignment);
  Alcotest.(check int) "nobody lost the destination" 0 r.Failure.lost;
  (* At least M1 itself must have rerouted. *)
  Alcotest.(check bool) "someone rerouted" true (r.Failure.rerouted > 0)

let test_sever_disconnecting () =
  let topo = small () in
  let m = model "REA" in
  let inst, final = converge topo ~dest:4 ~model:m in
  let before = State.assignment inst final in
  (* Kill both of S's uplinks: everyone must withdraw. *)
  let _t1, event1 = Failure.sever topo ~dest:4 ~state:final ~link:(2, 4) in
  let inst1 = event1.Failure.instance in
  let r1 = Failure.reconverge event1 ~before ~model:m in
  Alcotest.(check bool) "intermediate re-converged" true r1.Failure.converged;
  ignore inst1;
  (* Continue: remove the remaining uplink from the new topology. *)
  let topo1 =
    Topology.make ~names:(Topology.names topo)
      ~links:
        (List.filter
           (fun (x, y, _) -> not ((x = 2 && y = 4) || (x = 4 && y = 2)))
           (Topology.edges topo))
  in
  let inst1', final1 = converge topo1 ~dest:4 ~model:m in
  let before1 = State.assignment inst1' final1 in
  let _t2, event2 = Failure.sever topo1 ~dest:4 ~state:final1 ~link:(3, 4) in
  let r2 = Failure.reconverge event2 ~before:before1 ~model:m in
  Alcotest.(check bool) "re-converged after disconnection" true r2.Failure.converged;
  Alcotest.(check int) "all four other ASes lost the route" 4 r2.Failure.lost

let test_sever_unknown_link () =
  let topo = small () in
  let inst = Policy.compile topo ~dest:4 in
  let st = State.initial inst in
  try
    ignore (Failure.sever topo ~dest:4 ~state:st ~link:(0, 4));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_reconvergence_cheaper_than_cold_start () =
  (* Re-converging after a single link failure should need no more
     messages than converging the failed topology from scratch. *)
  let topo = Topology.generate { Topology.default_config with seed = 31 } in
  let dest = Topology.size topo - 1 in
  let m = model "RMS" in
  let inst, final = converge topo ~dest ~model:m in
  let before = State.assignment inst final in
  (* pick a link not incident to the destination *)
  let link =
    let a, b, _ =
      List.find (fun (a, b, _) -> a <> dest && b <> dest) (Topology.edges topo)
    in
    (a, b)
  in
  let topo', event = Failure.sever topo ~dest ~state:final ~link in
  let warm = Failure.reconverge event ~before ~model:m in
  Alcotest.(check bool) "re-converged" true warm.Failure.converged;
  let cold =
    Bgp.Simulate.run topo' ~dest ~model:m ~scheduler:Scheduler.round_robin
  in
  Alcotest.(check bool) "cold converged" true cold.Bgp.Simulate.converged;
  Alcotest.(check bool) "warm start sends fewer messages" true
    (warm.Failure.messages <= cold.Bgp.Simulate.messages)


(* ------------------------------------------------------------------ *)
(* Surgery *)

let test_surgery_identity () =
  (* Transplanting onto the same instance is the identity. *)
  let inst = Gadgets.fig6 in
  let m = model "RMS" in
  let entries = Scheduler.prefix 20 (Scheduler.random inst m ~seed:4) in
  let st = Trace.final (Executor.run_entries inst entries) in
  Alcotest.(check bool) "identity" true
    (State.equal st (Surgery.transplant ~old_instance:inst ~new_instance:inst st))

let test_surgery_drops_dead_channels () =
  let inst = Gadgets.disagree in
  let m = model "RMS" in
  let r = Executor.run ~validate:m ~max_steps:3 inst (Scheduler.round_robin inst m) in
  let st = Trace.final r.Executor.trace in
  (* New instance without the x-y edge. *)
  let inst' =
    Instance.make ~names:(Instance.names inst) ~dest:0
      ~edges:[ (0, 1); (0, 2) ]
      ~permitted:[ (1, [ [ 1; 0 ] ]); (2, [ [ 2; 0 ] ]) ]
  in
  let st' = Surgery.transplant ~old_instance:inst ~new_instance:inst' st in
  let x = Gadgets.node inst 'x' and y = Gadgets.node inst 'y' in
  Alcotest.(check bool) "x-y knowledge gone" true
    (Path.is_epsilon (State.rho st' (Channel.id ~src:y ~dst:x)));
  Alcotest.(check int) "x-y queues gone" 0
    (Channel.length (State.channels st') (Channel.id ~src:x ~dst:y));
  (* pi and announcements survive *)
  Alcotest.(check bool) "pi kept" true (Path.equal (State.pi st' x) (State.pi st x));
  Alcotest.(check bool) "announced kept" true
    (Path.equal (State.announced st' y) (State.announced st y))

let test_surgery_size_mismatch () =
  let a = Gadgets.disagree and b = Gadgets.fig6 in
  try
    ignore (Surgery.transplant ~old_instance:a ~new_instance:b (State.initial a));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Report *)

let test_report_disagree () =
  let report = Modelcheck.Report.analyze Gadgets.disagree in
  Alcotest.(check int) "solutions" 2 report.Modelcheck.Report.solutions;
  Alcotest.(check bool) "wheel found" true
    (report.Modelcheck.Report.dispute_wheel <> None);
  Alcotest.(check bool) "constructive fails" true
    (report.Modelcheck.Report.constructive = None);
  Alcotest.(check int) "three verdicts" 3
    (List.length report.Modelcheck.Report.verdicts);
  let text = Modelcheck.Report.to_string Gadgets.disagree report in
  Alcotest.(check bool) "mentions oscillation" true
    (let n = "oscillates" in
     let h = String.length text and k = String.length n in
     let rec loop i = i + k <= h && (String.sub text i k = n || loop (i + 1)) in
     loop 0)

let test_report_good_gadget () =
  let report = Modelcheck.Report.analyze Gadgets.good_gadget in
  Alcotest.(check int) "one solution" 1 report.Modelcheck.Report.solutions;
  Alcotest.(check bool) "no wheel" true (report.Modelcheck.Report.dispute_wheel = None);
  Alcotest.(check bool) "constructive succeeds" true
    (report.Modelcheck.Report.constructive <> None);
  List.iter
    (fun (v : Modelcheck.Report.verdict_summary) ->
      Alcotest.(check (option int)) "unique reachable solution" (Some 1)
        v.Modelcheck.Report.reachable_solutions)
    report.Modelcheck.Report.verdicts

let () =
  Alcotest.run "failure"
    [
      ( "link-failure",
        [
          Alcotest.test_case "sever and re-converge" `Quick test_sever_and_reconverge;
          Alcotest.test_case "disconnection withdraws routes" `Quick
            test_sever_disconnecting;
          Alcotest.test_case "unknown link rejected" `Quick test_sever_unknown_link;
          Alcotest.test_case "warm start beats cold start" `Quick
            test_reconvergence_cheaper_than_cold_start;
        ] );
      ( "surgery",
        [
          Alcotest.test_case "identity transplant" `Quick test_surgery_identity;
          Alcotest.test_case "dead channels dropped" `Quick test_surgery_drops_dead_channels;
          Alcotest.test_case "size mismatch rejected" `Quick test_surgery_size_mismatch;
        ] );
      ( "report",
        [
          Alcotest.test_case "DISAGREE report" `Quick test_report_disagree;
          Alcotest.test_case "GOOD GADGET report" `Quick test_report_good_gadget;
        ] );
    ]
