(* Tests for the tooling layers added on top of the core reproduction: the
   instance description language (Spp.Dsl), the constructive GSW solver,
   and the timed (MRAI) simulator. *)

open Spp
open Engine

(* ------------------------------------------------------------------ *)
(* Dsl *)

let disagree_text = {|
# The DISAGREE gadget (Fig. 5)
dest d
edges d-x d-y x-y
node x: xyd > xd
node y: yxd > yd
|}

let test_dsl_parse_disagree () =
  match Dsl.parse disagree_text with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok inst ->
    Alcotest.(check int) "size" 3 (Instance.size inst);
    Alcotest.(check int) "two solutions" 2 (Solver.count_solutions inst);
    Alcotest.(check bool) "wheel" true (Dispute.has_wheel inst);
    let x = Instance.find_node inst "x" in
    Alcotest.(check int) "x prefs" 2 (List.length (Instance.permitted inst x))

let test_dsl_multichar_names () =
  let text = {|
dest sink
edges sink-alpha sink-beta alpha-beta
node alpha: alpha-beta-sink > alpha-sink
node beta: beta-sink
|} in
  match Dsl.parse text with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok inst ->
    Alcotest.(check int) "size" 3 (Instance.size inst);
    let alpha = Instance.find_node inst "alpha" in
    Alcotest.(check int) "alpha prefs" 2 (List.length (Instance.permitted inst alpha))

let test_dsl_errors () =
  let expect_error text =
    match Dsl.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
  in
  expect_error "edges a-b";
  (* missing dest *)
  expect_error "dest d\nedges d-x\nnode x: xq > xd";
  (* unknown node in path *)
  expect_error "dest d\nedges d-x\nfrobnicate x";
  (* unknown declaration *)
  expect_error "dest d\nedges dx";
  (* bad edge syntax *)
  expect_error "dest d\nedges d-x\nnode x xd" (* missing colon *)

let test_dsl_roundtrip () =
  List.iter
    (fun (name, inst) ->
      match Dsl.parse (Dsl.print inst) with
      | Error e -> Alcotest.failf "%s roundtrip: %s" name e
      | Ok inst' ->
        Alcotest.(check int) (name ^ " size") (Instance.size inst) (Instance.size inst');
        (* same permitted structure, compared by (name, printed prefs) *)
        let shape i =
          List.sort compare
            (List.map
               (fun v ->
                 ( Instance.name i v,
                   List.map (Path.to_string ~names:(Instance.names i)) (Instance.permitted i v) ))
               (Instance.nodes i))
        in
        Alcotest.(check bool) (name ^ " shape") true (shape inst = shape inst'))
    (Gadgets.all_named ())

let test_dsl_roundtrip_random () =
  List.iter
    (fun seed ->
      let inst = Generator.instance { Generator.default with seed } in
      match Dsl.parse (Dsl.print inst) with
      | Error e -> Alcotest.failf "seed %d: %s" seed e
      | Ok inst' ->
        Alcotest.(check int) "solutions agree" (Solver.count_solutions inst)
          (Solver.count_solutions inst'))
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Constructive solver *)

let test_constructive_good_gadget () =
  match Solver.constructive Gadgets.good_gadget with
  | Some a ->
    Alcotest.(check bool) "is the unique solution" true
      (Assignment.equal a (List.hd (Solver.solutions Gadgets.good_gadget)))
  | None -> Alcotest.fail "constructive failed on GOOD GADGET"

let test_constructive_bad_gadget () =
  Alcotest.(check bool) "fails on BAD GADGET" true
    (Solver.constructive Gadgets.bad_gadget = None)

let test_constructive_on_wheel_free () =
  (* On dispute-wheel-free instances the construction always succeeds and
     agrees with the enumerating solver's unique answer. *)
  List.iter
    (fun seed ->
      let inst = Generator.safe_instance { Generator.default with nodes = 6; seed } in
      match Solver.constructive inst with
      | None -> Alcotest.failf "constructive failed on safe instance (seed %d)" seed
      | Some a ->
        Alcotest.(check bool) "solution" true (Assignment.is_solution inst a))
    [ 1; 2; 3; 4; 5; 6 ]

let test_constructive_gr_instances () =
  List.iter
    (fun seed ->
      let topo = Bgp.Topology.generate { Bgp.Topology.default_config with seed } in
      let inst = Bgp.Policy.compile topo ~dest:(Bgp.Topology.size topo - 1) in
      match Solver.constructive inst with
      | None -> Alcotest.failf "constructive failed on Gao-Rexford (seed %d)" seed
      | Some a -> Alcotest.(check bool) "solution" true (Assignment.is_solution inst a))
    [ 21; 22; 23 ]

(* ------------------------------------------------------------------ *)
(* Timed simulator *)

let test_timed_batch_converges () =
  let inst = Gadgets.good_gadget in
  let r = Timed.run inst in
  Alcotest.(check bool) "converged" true r.Timed.converged;
  Alcotest.(check bool) "solution" true (Assignment.is_solution inst r.Timed.assignment);
  Alcotest.(check bool) "finished after last change" true
    (r.Timed.finish_time >= r.Timed.last_change)

let test_timed_event_converges () =
  let inst = Gadgets.good_gadget in
  let r = Timed.run ~config:{ Timed.default with Timed.mode = Timed.Event_driven } inst in
  Alcotest.(check bool) "converged" true r.Timed.converged;
  Alcotest.(check bool) "solution" true (Assignment.is_solution inst r.Timed.assignment)

let test_timed_gr_instance () =
  let topo = Bgp.Topology.generate Bgp.Topology.default_config in
  let inst = Bgp.Policy.compile topo ~dest:(Bgp.Topology.size topo - 1) in
  List.iter
    (fun mode ->
      let r = Timed.run ~config:{ Timed.default with Timed.mode = mode } inst in
      Alcotest.(check bool) "converged" true r.Timed.converged;
      Alcotest.(check bool) "solution" true (Assignment.is_solution inst r.Timed.assignment))
    [ Timed.Batch; Timed.Event_driven ]

let test_timed_mrai_reduces_messages () =
  (* Batching more (larger MRAI) never inspects fewer messages per read, so
     the number of announcements typically falls; assert weak monotonicity
     between the two extremes. *)
  let topo = Bgp.Topology.generate { Bgp.Topology.default_config with seed = 77 } in
  let inst = Bgp.Policy.compile topo ~dest:(Bgp.Topology.size topo - 1) in
  match Timed.mrai_sweep ~intervals:[ 1; 16 ] inst with
  | [ (1, fast); (16, slow) ] ->
    Alcotest.(check bool) "both converge" true (fast.Timed.converged && slow.Timed.converged);
    Alcotest.(check bool) "batching sends no more messages" true
      (slow.Timed.messages <= fast.Timed.messages)
  | _ -> Alcotest.fail "unexpected sweep shape"

let test_timed_disagree_event_driven () =
  (* DISAGREE under deterministic event-driven timing with unit delays:
     the run must terminate one way or another within the horizon. *)
  let inst = Gadgets.disagree in
  let r =
    Timed.run
      ~config:{ Timed.default with Timed.mode = Timed.Event_driven; Timed.horizon = 5_000 }
      inst
  in
  (* Whichever outcome, the assignment must be consistent with the final
     state semantics. *)
  if r.Timed.converged then
    Alcotest.(check bool) "solution when converged" true
      (Assignment.is_solution inst r.Timed.assignment)


(* ------------------------------------------------------------------ *)
(* Replay (schedule serialization) *)

let test_replay_roundtrip_single () =
  let inst = Gadgets.disagree in
  let m = Option.get (Model.of_string "UMS") in
  let entries = Scheduler.prefix 30 (Scheduler.random inst m ~seed:9) in
  let text = Replay.print inst entries in
  match Replay.parse inst text with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok entries' ->
    Alcotest.(check int) "same length" (List.length entries) (List.length entries');
    (* replaying both produces identical traces *)
    let final es = Trace.final (Executor.run_entries inst es) in
    Alcotest.(check bool) "same behavior" true (State.equal (final entries) (final entries'))

let test_replay_roundtrip_multi () =
  let inst = Gadgets.disagree in
  let x = Gadgets.node inst 'x' and y = Gadgets.node inst 'y' in
  let entry =
    Activation.entry ~active:[ x; y ]
      ~reads:
        [
          Activation.read ~count:Activation.All (Channel.id ~src:y ~dst:x);
          Activation.read ~count:Activation.All (Channel.id ~src:x ~dst:y);
        ]
  in
  let text = Replay.print inst [ entry ] in
  match Replay.parse inst text with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok [ entry' ] ->
    Alcotest.(check (list int)) "actives" entry.Activation.active entry'.Activation.active;
    Alcotest.(check int) "reads" 2 (List.length entry'.Activation.reads)
  | Ok _ -> Alcotest.fail "wrong entry count"

let test_replay_drops_roundtrip () =
  let inst = Gadgets.disagree in
  let x = Gadgets.node inst 'x' and y = Gadgets.node inst 'y' in
  let entry =
    Activation.single x
      [ Activation.read ~drops:[ 1; 3 ] ~count:(Activation.Finite 4)
          (Channel.id ~src:y ~dst:x) ]
  in
  let text = Replay.print_entry inst entry in
  match Replay.parse_entry inst text with
  | Ok (Some e) ->
    let r = List.hd e.Activation.reads in
    Alcotest.(check (list int)) "drops survive" [ 1; 3 ]
      (Activation.IntSet.elements r.Activation.drops);
    Alcotest.(check bool) "count survives" true (r.Activation.count = Activation.Finite 4)
  | Ok None -> Alcotest.fail "empty parse"
  | Error e -> Alcotest.failf "parse error: %s" e

let test_replay_comments_and_errors () =
  let inst = Gadgets.disagree in
  (match Replay.parse inst "# comment\n\nx <- y:1\n" with
  | Ok [ _ ] -> ()
  | Ok l -> Alcotest.failf "expected one entry, got %d" (List.length l)
  | Error e -> Alcotest.failf "parse error: %s" e);
  (match Replay.parse inst "w <- y:1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown-node error");
  match Replay.parse inst "x <- y:lots" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected bad-count error"

(* ------------------------------------------------------------------ *)
(* Quiescence and stale dead ends *)

let test_quiescence_disagree () =
  let inst = Gadgets.disagree in
  let m s = Option.get (Model.of_string s) in
  (* Both stable solutions are reachable under R1O and under REA. *)
  Alcotest.(check int) "R1O reaches both" 2
    (Modelcheck.Quiescence.solution_count inst (m "R1O"));
  Alcotest.(check int) "REA reaches both" 2
    (Modelcheck.Quiescence.solution_count inst (m "REA"));
  (* Reliable models have no stale dead ends. *)
  Alcotest.(check int) "no stale under R1O" 0
    (List.length (Modelcheck.Quiescence.stale_quiescent_assignments inst (m "R1O")));
  (* Unreliable ones do (a final announcement can be dropped forever). *)
  Alcotest.(check bool) "stale dead ends under UMS" true
    (List.length (Modelcheck.Quiescence.stale_quiescent_assignments inst (m "UMS")) > 0)

let test_quiescence_bad_gadget () =
  let inst = Gadgets.bad_gadget in
  let m s = Option.get (Model.of_string s) in
  (* UEA keeps the unreliable state space small; UMS on BAD GADGET has
     millions of bounded states. *)
  Alcotest.(check int) "no real solutions ever" 0
    (Modelcheck.Quiescence.solution_count inst (m "UEA"));
  Alcotest.(check bool) "stale dead ends exist" true
    (List.length (Modelcheck.Quiescence.stale_quiescent_assignments inst (m "UEA")) > 0)

(* ------------------------------------------------------------------ *)
(* Fact audit *)

let test_audit_positives () =
  let entries = Modelcheck.Audit.positives ~seeds:[ 1 ] () in
  Alcotest.(check int) "one entry per fact" 124 (List.length entries);
  List.iter
    (fun (e : Modelcheck.Audit.entry) ->
      match e.Modelcheck.Audit.status with
      | Modelcheck.Audit.Verified -> ()
      | _ -> Alcotest.failf "unverified: %s" e.Modelcheck.Audit.fact)
    entries

let test_audit_negatives () =
  let entries = Modelcheck.Audit.negatives () in
  Alcotest.(check int) "one entry per fact" 15 (List.length entries);
  List.iter
    (fun (e : Modelcheck.Audit.entry) ->
      match e.Modelcheck.Audit.status with
      | Modelcheck.Audit.Verified | Modelcheck.Audit.Skipped _ -> ()
      | Modelcheck.Audit.Failed reason ->
        Alcotest.failf "failed: %s (%s)" e.Modelcheck.Audit.fact reason)
    entries

let () =
  Alcotest.run "tools"
    [
      ( "dsl",
        [
          Alcotest.test_case "parse DISAGREE" `Quick test_dsl_parse_disagree;
          Alcotest.test_case "multi-character names" `Quick test_dsl_multichar_names;
          Alcotest.test_case "errors" `Quick test_dsl_errors;
          Alcotest.test_case "gadget roundtrips" `Quick test_dsl_roundtrip;
          Alcotest.test_case "random roundtrips" `Quick test_dsl_roundtrip_random;
        ] );
      ( "constructive-solver",
        [
          Alcotest.test_case "GOOD GADGET" `Quick test_constructive_good_gadget;
          Alcotest.test_case "BAD GADGET" `Quick test_constructive_bad_gadget;
          Alcotest.test_case "wheel-free instances" `Quick test_constructive_on_wheel_free;
          Alcotest.test_case "Gao-Rexford instances" `Quick test_constructive_gr_instances;
        ] );
      ( "replay",
        [
          Alcotest.test_case "roundtrip random schedule" `Quick test_replay_roundtrip_single;
          Alcotest.test_case "roundtrip multi-node" `Quick test_replay_roundtrip_multi;
          Alcotest.test_case "roundtrip drops" `Quick test_replay_drops_roundtrip;
          Alcotest.test_case "comments and errors" `Quick test_replay_comments_and_errors;
        ] );
      ( "quiescence",
        [
          Alcotest.test_case "DISAGREE solutions reachable" `Quick test_quiescence_disagree;
          Alcotest.test_case "BAD GADGET has none" `Quick test_quiescence_bad_gadget;
        ] );
      ( "audit",
        [
          Alcotest.test_case "positive facts verify" `Quick test_audit_positives;
          Alcotest.test_case "negative facts verify" `Slow test_audit_negatives;
        ] );
      ( "timed",
        [
          Alcotest.test_case "batch mode" `Quick test_timed_batch_converges;
          Alcotest.test_case "event mode" `Quick test_timed_event_converges;
          Alcotest.test_case "BGP topology" `Quick test_timed_gr_instance;
          Alcotest.test_case "MRAI reduces messages" `Quick test_timed_mrai_reduces_messages;
          Alcotest.test_case "DISAGREE event-driven" `Quick test_timed_disagree_event_driven;
        ] );
    ]
