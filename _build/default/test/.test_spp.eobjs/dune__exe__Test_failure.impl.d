test/test_failure.ml: Alcotest Assignment Bgp Channel Engine Executor Failure Gadgets Instance List Model Modelcheck Option Path Policy Scheduler Spp State String Surgery Topology Trace
