test/test_realization.mli:
