test/test_spp.mli:
