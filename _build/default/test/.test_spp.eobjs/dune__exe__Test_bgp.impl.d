test/test_bgp.ml: Alcotest Assignment Bgp Config_map Dispute Engine Fmt Fun Instance List Model Option Path Policy Printf QCheck2 QCheck_alcotest Scheduler Simulate Spp Topology
