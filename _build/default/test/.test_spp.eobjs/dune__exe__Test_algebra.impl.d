test/test_algebra.ml: Alcotest Algebra Bgp Dispute Engine Executor Fmt Instance List Model Option Path Printf Scheduler Solver Spp
