test/test_tools.ml: Activation Alcotest Assignment Bgp Channel Dispute Dsl Engine Executor Gadgets Generator Instance List Model Modelcheck Option Path Replay Scheduler Solver Spp State Timed Trace
