test/test_engine.ml: Activation Alcotest Assignment Channel Engine Executor Fairness Fmt Gadgets Instance List Model Option Path Scheduler Spp State Step String Trace
