test/test_spp.ml: Alcotest Assignment Dispute Fmt Gadgets Generator Instance List Option Path QCheck2 QCheck_alcotest Solver Spp
