lib/spp/instance.ml: Array Fmt Fun List Path String
