lib/spp/solver.ml: Array Assignment Instance List Option Path
