lib/spp/generator.ml: Array Instance List Printf Random
