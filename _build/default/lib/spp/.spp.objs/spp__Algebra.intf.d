lib/spp/algebra.mli: Instance Path
