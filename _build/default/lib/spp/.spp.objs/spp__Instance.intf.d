lib/spp/instance.mli: Format Path
