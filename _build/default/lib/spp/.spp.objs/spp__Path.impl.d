lib/spp/path.ml: Array Fmt Hashtbl List Stdlib
