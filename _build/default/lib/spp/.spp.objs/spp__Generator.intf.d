lib/spp/generator.mli: Instance
