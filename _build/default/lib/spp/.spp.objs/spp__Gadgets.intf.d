lib/spp/gadgets.mli: Instance Path
