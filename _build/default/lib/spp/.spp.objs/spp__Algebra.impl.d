lib/spp/algebra.ml: Array Fun Instance List Path
