lib/spp/path.mli: Format
