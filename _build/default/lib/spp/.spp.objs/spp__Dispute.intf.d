lib/spp/dispute.mli: Format Instance Path
