lib/spp/dsl.mli: Instance
