lib/spp/assignment.mli: Format Instance Path
