lib/spp/gadgets.ml: Array Instance List Path Printf String
