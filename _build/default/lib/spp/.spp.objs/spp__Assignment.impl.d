lib/spp/assignment.ml: Array Fmt Instance List Path Stdlib
