lib/spp/dsl.ml: Array Buffer In_channel Instance List Path Printf Result String
