lib/spp/solver.mli: Assignment Instance
