lib/spp/dispute.ml: Fmt Instance List Map Option Path
