type spoke = { pivot : Path.node; direct : Path.t; rim_route : Path.t }
type wheel = spoke list

let rank_exn inst v p =
  match Instance.rank inst v p with
  | Some r -> r
  | None -> invalid_arg "Dispute: path not permitted"

let check_spoke inst s next =
  Instance.is_permitted inst s.pivot s.direct
  && Instance.is_permitted inst s.pivot s.rim_route
  && rank_exn inst s.pivot s.rim_route <= rank_exn inst s.pivot s.direct
  && next.pivot <> s.pivot
  && next.pivot <> Instance.dest inst
  &&
  match Path.suffix_from next.pivot s.rim_route with
  | Some suffix -> Path.equal suffix next.direct
  | None -> false

let check_wheel inst = function
  | [] -> false
  | first :: _ as wheel ->
    let rec loop = function
      | [ last ] -> check_spoke inst last first
      | s :: (next :: _ as rest) -> check_spoke inst s next && loop rest
      | [] -> assert false
    in
    loop wheel

(* Dispute digraph: vertices are (node, permitted path) pairs; an edge
   (u, Q) -> (w, Q') carries the witnessing permitted path P' of u with
   rank(P') <= rank(Q), where w is an intermediate node of P' and Q' its
   suffix at w.  Cycles of this digraph are exactly dispute wheels. *)
module V = struct
  type t = Path.node * Path.t

  let compare = compare
end

module VMap = Map.Make (V)

let successors inst (u, q) =
  let rq = rank_exn inst u q in
  List.concat_map
    (fun (p', rp') ->
      if rp' > rq then []
      else
        match Path.to_nodes p' with
        | [] | [ _ ] | [ _; _ ] -> []
        | _ :: intermediates ->
          List.filter_map
            (fun w ->
              if w = Instance.dest inst then None
              else
                match Path.suffix_from w p' with
                | Some suffix when Instance.is_permitted inst w suffix ->
                  Some ((w, suffix), p')
                | Some _ | None -> None)
            intermediates)
    (List.filter_map
       (fun p -> Option.map (fun r -> (p, r)) (Instance.rank inst u p))
       (Instance.permitted inst u))

let find inst =
  let vertices =
    List.concat_map
      (fun v ->
        if v = Instance.dest inst then []
        else List.map (fun p -> (v, p)) (Instance.permitted inst v))
      (Instance.nodes inst)
  in
  (* DFS with colors; on back edge, unwind the stack into a wheel. *)
  let color = ref VMap.empty in
  let exception Found of (V.t * Path.t) list in
  let rec dfs stack v =
    color := VMap.add v `Gray !color;
    List.iter
      (fun (w, witness) ->
        match VMap.find_opt w !color with
        | Some `Gray ->
          (* Cycle: the portion of the stack from w to v, plus edge v->w. *)
          let rec take acc = function
            | (x, wit) :: rest ->
              if V.compare x w = 0 then (x, wit) :: acc else take ((x, wit) :: acc) rest
            | [] -> acc
          in
          raise (Found (take [] ((v, witness) :: stack)))
        | Some `Black -> ()
        | None -> dfs ((v, witness) :: stack) w)
      (successors inst v);
    color := VMap.add v `Black !color
  in
  match
    List.iter
      (fun v -> if not (VMap.mem v !color) then dfs [] v)
      vertices
  with
  | () -> None
  | exception Found cycle ->
    let wheel =
      List.map (fun ((u, q), witness) -> { pivot = u; direct = q; rim_route = witness }) cycle
    in
    assert (check_wheel inst wheel);
    Some wheel

let has_wheel inst = find inst <> None

let pp_wheel inst ppf wheel =
  Fmt.pf ppf "@[<v>dispute wheel:@,%a@]"
    Fmt.(
      list ~sep:cut (fun ppf s ->
          Fmt.pf ppf "  pivot %s: direct %a, rim route %a" (Instance.name inst s.pivot)
            (Instance.pp_path inst) s.direct (Instance.pp_path inst) s.rim_route))
    wheel
