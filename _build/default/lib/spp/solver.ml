(* Backtracking over nodes in id order.  Each non-destination node is
   assigned one of its permitted paths or epsilon.  Partial pruning: a
   path can only be assigned if its next hop, when already assigned, is
   consistent with it; full stability is checked on complete assignments. *)

let choices inst v =
  if v = Instance.dest inst then [ Path.of_nodes [ v ] ]
  else Instance.permitted inst v @ [ Path.epsilon ]

let consistent_so_far inst (partial : Path.t option array) v p =
  if Path.is_epsilon p then true
  else
    match Path.to_nodes p with
    | _ :: (u :: _ as rest) ->
      (match partial.(u) with
      | Some q -> Path.equal q (Path.of_nodes rest)
      | None -> true)
    | _ -> v = Instance.dest inst

(* A completed choice for v must also not be destabilized by already-fixed
   neighbors: if a strictly better extension of a fixed neighbor's path is
   permitted at v, prune. *)
let stable_so_far inst (partial : Path.t option array) v p =
  let rank_of q = match Instance.rank inst v q with Some r -> r | None -> max_int in
  let rv = if Path.is_epsilon p then max_int else rank_of p in
  (* No already-fixed neighbor may offer a strictly better feasible route. *)
  let better_exists =
    List.exists
      (fun u ->
        match partial.(u) with
        | Some pu when not (Path.is_epsilon pu) ->
          let cand = Path.extend v pu in
          Instance.is_permitted inst v cand && rank_of cand < rv
        | _ -> false)
      (Instance.neighbors inst v)
  in
  not better_exists

let solutions ?limit inst =
  let n = Instance.size inst in
  let partial = Array.make n None in
  let found = ref [] in
  let count = ref 0 in
  let full () = Array.map (function Some p -> p | None -> assert false) partial in
  let exception Done in
  let rec go v =
    if v = n then begin
      let a =
        Assignment.of_list inst (Array.to_list (full ()) |> List.mapi (fun i p -> (i, p)))
      in
      if Assignment.is_solution inst a then begin
        found := a :: !found;
        incr count;
        match limit with Some l when !count >= l -> raise Done | _ -> ()
      end
    end
    else
      List.iter
        (fun p ->
          if consistent_so_far inst partial v p && stable_so_far inst partial v p
          then begin
            partial.(v) <- Some p;
            go (v + 1);
            partial.(v) <- None
          end)
        (choices inst v)
  in
  (try go 0 with Done -> ());
  List.rev !found

let solve inst = match solutions ~limit:1 inst with [] -> None | a :: _ -> Some a
let is_solvable inst = solve inst <> None
let count_solutions inst = List.length (solutions inst)

(* Griffin-Shepherd-Wilfong greedy construction.  A permitted path Q of an
   unfixed node is "still possible" when every fixed node on it carries
   exactly the corresponding suffix; a node can be fixed to path P (an
   extension of a fixed neighbor's path) once P is at least as preferred as
   every still-possible permitted path.  Nodes with no possible path are
   fixed to epsilon. *)
let constructive inst =
  let n = Instance.size inst in
  let fixed : Path.t option array = Array.make n None in
  fixed.(Instance.dest inst) <- Some (Path.of_nodes [ Instance.dest inst ]);
  let possible () q =
    (* q permitted at v; check consistency with fixed nodes *)
    let rec walk = function
      | u :: rest ->
        (match fixed.(u) with
        | Some p -> Path.equal p (Path.of_nodes (u :: rest))
        | None -> walk rest)
      | [] -> true
    in
    match Path.to_nodes q with _ :: rest -> walk rest | [] -> false
  in
  let candidate v =
    (* best extension of a fixed neighbor, if unbeatable *)
    let possibles = List.filter (possible ()) (Instance.permitted inst v) in
    match possibles with
    | [] -> Some Path.epsilon
    | best :: _ ->
      (* permitted lists are rank-sorted, so the head is the most
         preferred possible path; it is fixable iff it extends a fixed
         node's path *)
      (match Path.to_nodes best with
      | _ :: (u :: _ as rest) when fixed.(u) = Some (Path.of_nodes rest) -> Some best
      | _ -> None)
  in
  let rec loop () =
    let progress = ref false in
    for v = 0 to n - 1 do
      if fixed.(v) = None then
        match candidate v with
        | Some p ->
          fixed.(v) <- Some p;
          progress := true
        | None -> ()
    done;
    if Array.exists (fun f -> f = None) fixed then
      if !progress then loop () else None
    else begin
      let a = Assignment.make inst (fun v -> Option.get fixed.(v)) in
      if Assignment.is_solution inst a then Some a else None
    end
  in
  loop ()

let greedy inst =
  let respond a =
    Assignment.make inst (fun v ->
        let candidates =
          List.filter_map
            (fun u ->
              let pu = Assignment.get a u in
              if Path.is_epsilon pu then None else Some (Path.extend v pu))
            (Instance.neighbors inst v)
        in
        Instance.best inst v candidates)
  in
  let rec iterate seen a =
    if List.exists (Assignment.equal a) seen then a
    else iterate (a :: seen) (respond a)
  in
  iterate [] (Assignment.all_epsilon inst)
