type node = int

let pp_node ~names ppf v =
  if v >= 0 && v < Array.length names then Fmt.string ppf names.(v)
  else Fmt.pf ppf "#%d" v

(* Invariant: the list is either empty (epsilon) or a sequence of distinct
   non-negative node ids, source first.  Simplicity is enforced by
   [Instance.validate] for permitted paths but not by construction, so that
   the engine can form and then reject non-simple extensions. *)
type t = node list

let epsilon = []
let is_epsilon p = p = []
let of_nodes nodes = nodes
let to_nodes p = p

let source = function [] -> None | v :: _ -> Some v

let rec destination = function
  | [] -> None
  | [ v ] -> Some v
  | _ :: rest -> destination rest

let next_hop = function [] | [ _ ] -> None | _ :: u :: _ -> Some u
let length = function [] -> 0 | p -> List.length p - 1

let extend v = function
  | [] -> invalid_arg "Path.extend: cannot extend the empty path"
  | p -> v :: p

let contains v p = List.mem v p

let is_simple p =
  let rec loop seen = function
    | [] -> true
    | v :: rest -> (not (List.mem v seen)) && loop (v :: seen) rest
  in
  loop [] p

let rec suffix_from v = function
  | [] -> None
  | u :: rest -> if u = v then Some (u :: rest) else suffix_from v rest

let prefix_to v p =
  let rec loop acc = function
    | [] -> None
    | u :: rest ->
      if u = v then Some (List.rev (u :: acc)) else loop (u :: acc) rest
  in
  loop [] p

let equal = ( = )
let compare = Stdlib.compare
let hash = Hashtbl.hash

let pp ~names ppf = function
  | [] -> Fmt.string ppf "\xCE\xB5" (* ε *)
  | p -> List.iter (fun v -> pp_node ~names ppf v) p

let to_string ~names p = Fmt.str "%a" (pp ~names) p
