let node inst c = Instance.find_node inst (String.make 1 c)

let path inst s =
  Path.of_nodes (List.init (String.length s) (fun i -> node inst s.[i]))

(* Build an instance from single-character node names, edges written as
   two-character strings, and per-node permitted paths written as path
   strings (most preferred first). *)
let build ~names ~dest ~edges ~prefs =
  let name_array = Array.of_list (List.map (String.make 1) names) in
  let id c =
    let rec loop i =
      if i >= Array.length name_array then invalid_arg "Gadgets.build: unknown node"
      else if name_array.(i) = String.make 1 c then i
      else loop (i + 1)
    in
    loop 0
  in
  let parse s = List.init (String.length s) (fun i -> id s.[i]) in
  Instance.make ~names:name_array ~dest:(id dest)
    ~edges:(List.map (fun e ->
                if String.length e <> 2 then invalid_arg "Gadgets.build: bad edge";
                (id e.[0], id e.[1]))
              edges)
    ~permitted:(List.map (fun (c, paths) -> (id c, List.map parse paths)) prefs)

let disagree =
  build ~names:[ 'd'; 'x'; 'y' ] ~dest:'d'
    ~edges:[ "dx"; "dy"; "xy" ]
    ~prefs:[ ('x', [ "xyd"; "xd" ]); ('y', [ "yxd"; "yd" ]) ]

let fig6 =
  build
    ~names:[ 'd'; 'x'; 'y'; 'z'; 'a'; 'u'; 'v' ]
    ~dest:'d'
    ~edges:[ "dx"; "dy"; "dz"; "xa"; "ya"; "za"; "au"; "av"; "uv" ]
    ~prefs:
      [
        ('x', [ "xd" ]);
        ('y', [ "yd" ]);
        ('z', [ "zd" ]);
        ('a', [ "azd"; "ayd"; "axd" ]);
        (* u refuses all paths through y *)
        ('u', [ "uvazd"; "uazd"; "uaxd" ]);
        ('v', [ "vuazd"; "vazd"; "vuaxd"; "vayd" ]);
      ]

let fig7 =
  build
    ~names:[ 'd'; 'a'; 'b'; 'u'; 'v'; 's' ]
    ~dest:'d'
    ~edges:[ "da"; "db"; "ua"; "ub"; "va"; "vb"; "su"; "sv" ]
    ~prefs:
      [
        ('a', [ "ad" ]);
        ('b', [ "bd" ]);
        ('u', [ "uad"; "ubd" ]);
        ('v', [ "vad"; "vbd" ]);
        ('s', [ "subd"; "svbd"; "suad" ]);
      ]

let fig8 =
  build
    ~names:[ 'd'; 'a'; 'b'; 'u'; 's' ]
    ~dest:'d'
    ~edges:[ "da"; "db"; "ua"; "ub"; "su" ]
    ~prefs:
      [
        ('a', [ "ad" ]);
        ('b', [ "bd" ]);
        ('u', [ "ubd"; "uad" ]);
        ('s', [ "suad"; "subd" ]);
      ]

let fig9 =
  build
    ~names:[ 'd'; 'a'; 'b'; 'x'; 'c'; 's' ]
    ~dest:'d'
    ~edges:[ "da"; "db"; "dx"; "ca"; "cb"; "sc"; "sx" ]
    ~prefs:
      [
        ('a', [ "ad" ]);
        ('b', [ "bd" ]);
        ('x', [ "xd" ]);
        ('c', [ "cad"; "cbd" ]);
        ('s', [ "scbd"; "sxd"; "scad" ]);
      ]

let bad_gadget =
  build
    ~names:[ 'd'; '1'; '2'; '3' ]
    ~dest:'d'
    ~edges:[ "d1"; "d2"; "d3"; "13"; "21"; "32" ]
    ~prefs:
      [
        ('1', [ "13d"; "1d" ]); ('2', [ "21d"; "2d" ]); ('3', [ "32d"; "3d" ]);
      ]

let good_gadget =
  build
    ~names:[ 'd'; '1'; '2'; '3' ]
    ~dest:'d'
    ~edges:[ "d1"; "d2"; "d3"; "13"; "21" ]
    ~prefs:[ ('1', [ "13d"; "1d" ]); ('2', [ "21d"; "2d" ]); ('3', [ "3d" ]) ]

let shortest_paths ~n =
  if n < 2 then invalid_arg "Gadgets.shortest_paths: need n >= 2";
  let names = Array.init (n + 1) (fun i -> if i = 0 then "d" else Printf.sprintf "n%d" i) in
  let edges =
    (* Ring 1..n plus a chord from node 1 to d. *)
    (1, 0) :: (2, 0) :: List.init (n - 1) (fun i -> (i + 1, i + 2))
  in
  (* Permitted paths: all simple paths of length <= n, ranked by length. *)
  let adj = Array.make (n + 1) [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  let paths_of v =
    let acc = ref [] in
    let rec explore path u =
      if u = 0 then acc := List.rev path :: !acc
      else
        List.iter
          (fun w -> if not (List.mem w path) then explore (w :: path) w)
          adj.(u)
    in
    explore [ v ] v;
    List.sort
      (fun p q -> compare (List.length p, p) (List.length q, q))
      !acc
  in
  let permitted = List.init n (fun i -> (i + 1, paths_of (i + 1))) in
  Instance.make ~names ~dest:0 ~edges ~permitted

let all_named () =
  [
    ("DISAGREE", disagree);
    ("FIG6", fig6);
    ("FIG7", fig7);
    ("FIG8", fig8);
    ("FIG9", fig9);
    ("BAD-GADGET", bad_gadget);
    ("GOOD-GADGET", good_gadget);
  ]
