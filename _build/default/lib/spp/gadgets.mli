(** The paper's example networks (Figures 5–9) and classic SPP gadgets.

    Node names are single characters matching the paper's figures, so paths
    print exactly as in the appendix tables (e.g. "uvazd"). *)

val node : Instance.t -> char -> Path.node
(** Node id of a single-character name. *)

val path : Instance.t -> string -> Path.t
(** Parses a path written as in the paper, e.g. ["uvazd"]; [""] is epsilon. *)

val disagree : Instance.t
(** Fig. 5 / Ex. A.1: DISAGREE.  Two stable solutions; oscillates in R1O but
    cannot oscillate in REO, REF, R1A, RMA, REA. *)

val fig6 : Instance.t
(** Fig. 6 / Ex. A.2: oscillates in REO and REF but not in the polling
    models R1A, RMA, REA. *)

val fig7 : Instance.t
(** Fig. 7 / Ex. A.3: an REO execution that R1O cannot realize exactly. *)

val fig8 : Instance.t
(** Fig. 8 / Ex. A.4: an REA execution that R1O cannot realize with
    repetition. *)

val fig9 : Instance.t
(** Fig. 9 / Ex. A.5: an REA execution that R1S cannot realize exactly. *)

val bad_gadget : Instance.t
(** Griffin–Shepherd–Wilfong BAD GADGET: no stable solution. *)

val good_gadget : Instance.t
(** Griffin–Shepherd–Wilfong GOOD GADGET: dispute-wheel-free, one stable
    solution. *)

val shortest_paths : n:int -> Instance.t
(** A ring of [n] nodes around the destination with shortest-path ranking:
    always convergent, used as a well-behaved baseline. *)

val all_named : unit -> (string * Instance.t) list
(** Every fixed gadget with its name (excludes the parametric ones). *)
