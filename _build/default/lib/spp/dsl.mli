(** A small textual format for SPP instances, so that networks can be kept
    in files, diffed, and fed to the command-line tools.

    Grammar (one declaration per line; '#' starts a comment):

    {v
    dest d
    edges d-x d-y x-y
    node x: xyd > xd
    node y: yxd > yd
    v}

    Node names are single words; paths are written either as
    juxtaposition of single-character names (as in the paper: [xyd]) or as
    dash-separated multi-character names ([x-y-d]).  Preferences are listed
    most preferred first, separated by [>]. *)

val parse : string -> (Instance.t, string) result
(** Parses the description; the error string mentions the offending line. *)

val parse_file : string -> (Instance.t, string) result

val print : Instance.t -> string
(** Prints an instance in the same format; [parse (print i)] reproduces
    the instance. *)
