(** Path assignments and the stability/consistency conditions that define a
    solution of the Stable Paths Problem (Sec. 2.1). *)

type t
(** A total map from nodes to paths (possibly {!Path.epsilon}). *)

val make : Instance.t -> (Path.node -> Path.t) -> t
val of_list : Instance.t -> (Path.node * Path.t) list -> t
(** Nodes not listed are assigned {!Path.epsilon}; the destination is always
    assigned its trivial path. *)

val get : t -> Path.node -> Path.t
val to_list : t -> (Path.node * Path.t) list
val equal : t -> t -> bool
val compare : t -> t -> int

val all_epsilon : Instance.t -> t
(** The initial assignment: epsilon everywhere, [d] at the destination. *)

type violation =
  | Inconsistent of Path.node
      (** the next hop's assigned path does not support this node's path *)
  | Not_permitted of Path.node
  | Unstable of Path.node * Path.t
      (** the node would prefer the (feasible) alternative path *)

val pp_violation : Instance.t -> Format.formatter -> violation -> unit

val violations : Instance.t -> t -> violation list
(** Consistency: if [pi_v = v·p] with next hop [u] then [pi_u = p].
    Stability: [pi_v] is the best permitted path in
    [{ v·pi_u | u neighbor of v }] (epsilon if none is permitted). *)

val is_solution : Instance.t -> t -> bool
(** True iff {!violations} is empty: the assignment is a stable, consistent
    solution of the instance. *)

val pp : Instance.t -> Format.formatter -> t -> unit
