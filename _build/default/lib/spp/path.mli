(** Nodes and routing paths for the Stable Paths Problem.

    A node is an integer identifier local to an {!Instance.t}.  A path is the
    sequence of nodes from its source down to the destination; the empty path
    [epsilon] stands for "no route" and doubles as the withdrawal message in
    the execution engine. *)

type node = int

val pp_node : names:string array -> Format.formatter -> node -> unit

type t
(** A path, either [epsilon] or a non-empty node sequence ending at the
    destination.  Structural equality and ordering are meaningful. *)

val epsilon : t
(** The empty path (no route / withdrawal). *)

val is_epsilon : t -> bool

val of_nodes : node list -> t
(** [of_nodes [v1; ...; vk]] is the path v1 v2 ... vk (source first).
    [of_nodes []] is {!epsilon}. *)

val to_nodes : t -> node list

val source : t -> node option
(** First node of the path; [None] for {!epsilon}. *)

val destination : t -> node option
(** Last node of the path; [None] for {!epsilon}. *)

val next_hop : t -> node option
(** Second node of the path, i.e. the neighbor the source routes through;
    [None] for {!epsilon} and for the trivial one-node path. *)

val length : t -> int
(** Number of edges, i.e. number of nodes minus one; 0 for {!epsilon}. *)

val extend : node -> t -> t
(** [extend v p] is the path v·p.  Raises [Invalid_argument] if [p] is
    {!epsilon} (one cannot extend "no route"). *)

val contains : node -> t -> bool

val is_simple : t -> bool
(** No repeated node.  {!epsilon} is simple. *)

val suffix_from : node -> t -> t option
(** [suffix_from v p] is the suffix of [p] starting at [v], if [v] occurs
    in [p]. *)

val prefix_to : node -> t -> t option
(** [prefix_to v p] is the prefix of [p] ending at [v] (inclusive), if [v]
    occurs in [p]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : names:string array -> Format.formatter -> t -> unit
(** Prints paths in the paper's compact style, e.g. "uvazd"; {!epsilon}
    prints as the empty-set symbol. *)

val to_string : names:string array -> t -> string
