let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

type decl =
  | Dest of string
  | Edges of (string * string) list
  | Node of string * string list list
      (* node name, preference-ordered paths as name lists *)

let parse_path ~single_char_names token =
  if String.contains token '-' then
    Ok (String.split_on_char '-' token)
  else if single_char_names then
    Ok (List.init (String.length token) (fun i -> String.make 1 token.[i]))
  else Error (Printf.sprintf "path %S needs dash-separated hops" token)

let parse_decl ~single_char_names line =
  match words line with
  | [] -> Ok None
  | [ "dest"; d ] -> Ok (Some (Dest d))
  | "dest" :: _ -> Error "dest expects exactly one name"
  | "edges" :: rest ->
    let parse_edge tok =
      match String.split_on_char '-' tok with
      | [ a; b ] when a <> "" && b <> "" -> Ok (a, b)
      | _ -> Error (Printf.sprintf "bad edge %S" tok)
    in
    let rec loop acc = function
      | [] -> Ok (Some (Edges (List.rev acc)))
      | tok :: rest -> (
        match parse_edge tok with Ok e -> loop (e :: acc) rest | Error e -> Error e)
    in
    loop [] rest
  | "node" :: rest -> (
    (* node <name>: p1 > p2 ... — the colon may stick to the name *)
    let flat = String.concat " " rest in
    match String.index_opt flat ':' with
    | None -> Error "node declaration needs ':'"
    | Some i ->
      let name = String.trim (String.sub flat 0 i) in
      let prefs = String.sub flat (i + 1) (String.length flat - i - 1) in
      if name = "" || String.contains name ' ' then Error "bad node name"
      else
        let path_tokens =
          String.split_on_char '>' prefs |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        in
        let rec loop acc = function
          | [] -> Ok (Some (Node (name, List.rev acc)))
          | tok :: rest -> (
            match parse_path ~single_char_names tok with
            | Ok p -> loop (p :: acc) rest
            | Error e -> Error e)
        in
        loop [] path_tokens)
  | w :: _ -> Error (Printf.sprintf "unknown declaration %S" w)

let parse text =
  let lines = String.split_on_char '\n' text in
  (* First pass: collect names from dest/edges to know whether they are all
     single characters (enabling the paper's juxtaposed path syntax). *)
  let mentioned = ref [] in
  let mention n = if not (List.mem n !mentioned) then mentioned := n :: !mentioned in
  List.iter
    (fun line ->
      match words (strip_comment line) with
      | "dest" :: rest -> List.iter mention rest
      | "edges" :: rest ->
        List.iter
          (fun tok ->
            match String.split_on_char '-' tok with
            | [ a; b ] ->
              mention a;
              mention b
            | _ -> ())
          rest
      | "node" :: name :: _ ->
        mention
          (match String.index_opt name ':' with
          | Some i -> String.sub name 0 i
          | None -> name)
      | _ -> ())
    lines;
  let names = List.rev !mentioned in
  let single_char_names = List.for_all (fun n -> String.length n = 1) names in
  let decls = ref [] in
  let error = ref None in
  List.iteri
    (fun lineno line ->
      if !error = None then
        match parse_decl ~single_char_names (strip_comment line) with
        | Ok None -> ()
        | Ok (Some d) -> decls := d :: !decls
        | Error e -> error := Some (Printf.sprintf "line %d: %s" (lineno + 1) e))
    lines;
  match !error with
  | Some e -> Error e
  | None ->
    let decls = List.rev !decls in
    let dest =
      List.find_map (function Dest d -> Some d | _ -> None) decls
    in
    (match dest with
    | None -> Error "missing 'dest' declaration"
    | Some dest_name ->
      let name_arr = Array.of_list names in
      let id n =
        let rec find i =
          if i >= Array.length name_arr then None
          else if name_arr.(i) = n then Some i
          else find (i + 1)
        in
        find 0
      in
      let resolve n =
        match id n with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "unknown node %S (not in dest/edges)" n)
      in
      let ( let* ) = Result.bind in
      let rec resolve_all = function
        | [] -> Ok []
        | n :: rest ->
          let* i = resolve n in
          let* rest = resolve_all rest in
          Ok (i :: rest)
      in
      let* dest_id = resolve dest_name in
      let* edges =
        List.fold_left
          (fun acc d ->
            let* acc = acc in
            match d with
            | Edges es ->
              List.fold_left
                (fun acc (a, b) ->
                  let* acc = acc in
                  let* a = resolve a in
                  let* b = resolve b in
                  Ok ((a, b) :: acc))
                (Ok acc) es
            | Dest _ | Node _ -> Ok acc)
          (Ok []) decls
      in
      let* permitted =
        List.fold_left
          (fun acc d ->
            let* acc = acc in
            match d with
            | Node (n, paths) ->
              let* v = resolve n in
              let* paths =
                List.fold_left
                  (fun acc p ->
                    let* acc = acc in
                    let* p = resolve_all p in
                    Ok (p :: acc))
                  (Ok []) paths
              in
              Ok ((v, List.rev paths) :: acc)
            | Dest _ | Edges _ -> Ok acc)
          (Ok []) decls
      in
      (try Ok (Instance.make ~names:name_arr ~dest:dest_id ~edges ~permitted)
       with Invalid_argument e -> Error e))

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error e -> Error e

let print inst =
  let names = Instance.names inst in
  let single = Array.for_all (fun n -> String.length n = 1) names in
  let path_str p =
    let hops = List.map (fun v -> names.(v)) (Path.to_nodes p) in
    if single then String.concat "" hops else String.concat "-" hops
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "dest %s\n" (Instance.name inst (Instance.dest inst)));
  Buffer.add_string buf
    ("edges "
    ^ String.concat " "
        (List.map
           (fun (a, b) -> Printf.sprintf "%s-%s" names.(a) names.(b))
           (Instance.edges inst))
    ^ "\n");
  List.iter
    (fun v ->
      if v <> Instance.dest inst then
        Buffer.add_string buf
          (Printf.sprintf "node %s: %s\n" (Instance.name inst v)
             (String.concat " > " (List.map path_str (Instance.permitted inst v)))))
    (Instance.nodes inst);
  Buffer.contents buf
