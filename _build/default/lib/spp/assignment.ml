type t = Path.t array

let make inst f =
  Array.init (Instance.size inst) (fun v ->
      if v = Instance.dest inst then Path.of_nodes [ v ] else f v)

let of_list inst l =
  make inst (fun v ->
      match List.assoc_opt v l with Some p -> p | None -> Path.epsilon)

let get t v = t.(v)
let to_list t = Array.to_list t |> List.mapi (fun v p -> (v, p))
let equal a b = Array.for_all2 Path.equal a b
let compare = Stdlib.compare
let all_epsilon inst = make inst (fun _ -> Path.epsilon)

type violation =
  | Inconsistent of Path.node
  | Not_permitted of Path.node
  | Unstable of Path.node * Path.t

let pp_violation inst ppf = function
  | Inconsistent v -> Fmt.pf ppf "%s's path is not supported by its next hop" (Instance.name inst v)
  | Not_permitted v -> Fmt.pf ppf "%s's path is not permitted" (Instance.name inst v)
  | Unstable (v, p) ->
    Fmt.pf ppf "%s would prefer %a" (Instance.name inst v) (Instance.pp_path inst) p

(* The feasible alternatives of v under assignment [t]: extensions of each
   neighbor's assigned path. *)
let feasible inst t v =
  List.filter_map
    (fun u ->
      let pu = t.(u) in
      if Path.is_epsilon pu then None
      else
        let cand = Path.extend v pu in
        if Instance.is_permitted inst v cand then Some cand else None)
    (Instance.neighbors inst v)

let violations inst t =
  let errs = ref [] in
  let add e = errs := e :: !errs in
  let check v =
    if v = Instance.dest inst then ()
    else begin
      let pv = t.(v) in
      (if not (Path.is_epsilon pv) then
         if not (Instance.is_permitted inst v pv) then add (Not_permitted v)
         else
           match Path.to_nodes pv with
           | _ :: (u :: _ as rest) ->
             if not (Path.equal t.(u) (Path.of_nodes rest)) then add (Inconsistent v)
           | _ -> add (Not_permitted v));
      let alternatives = feasible inst t v in
      let best = Instance.best inst v alternatives in
      let rank_of p =
        match Instance.rank inst v p with Some r -> r | None -> max_int
      in
      if Path.is_epsilon pv then begin
        if not (Path.is_epsilon best) then add (Unstable (v, best))
      end
      else if (not (Path.is_epsilon best)) && rank_of best < rank_of pv then
        add (Unstable (v, best))
    end
  in
  List.iter check (Instance.nodes inst);
  List.rev !errs

let is_solution inst t = violations inst t = []

let pp inst ppf t =
  Fmt.pf ppf "(%a)"
    Fmt.(list ~sep:(any ", ") (fun ppf (v, p) ->
             Fmt.pf ppf "%s:%a" (Instance.name inst v) (Instance.pp_path inst) p))
    (to_list t)
