(** Enumeration of the stable solutions of an SPP instance.

    Deciding whether an SPP instance is solvable is NP-complete (Griffin,
    Shepherd, Wilfong 2002); this module implements an exact backtracking
    search suitable for the gadget-sized instances of the paper and for
    randomly generated instances of moderate size. *)

val solutions : ?limit:int -> Instance.t -> Assignment.t list
(** All stable, consistent path assignments, in a deterministic order.
    [limit] (default: unlimited) stops the search after that many solutions
    have been found. *)

val solve : Instance.t -> Assignment.t option
(** The first solution found, if any. *)

val is_solvable : Instance.t -> bool
val count_solutions : Instance.t -> int

val constructive : Instance.t -> Assignment.t option
(** The Griffin–Shepherd–Wilfong greedy construction: repeatedly fix a node
    whose best feasible path (over already-fixed nodes only) cannot be
    beaten by any path through unfixed nodes.  Polynomial, and guaranteed
    to produce the (then unique) solution on dispute-wheel-free instances;
    may return [None] on instances with wheels even when a solution
    exists. *)

val greedy : Instance.t -> Assignment.t
(** The assignment computed by synchronous best-response iteration from the
    all-epsilon assignment, stopped at the first repeated assignment.  If the
    returned assignment satisfies {!Assignment.is_solution} the instance
    converged under this particular (REA-like, simultaneous) schedule; the
    result is a heuristic and is {e not} guaranteed to be a solution. *)
