(** Dispute-wheel detection.

    A dispute wheel (Griffin–Shepherd–Wilfong) is a cyclic policy conflict:
    pivot nodes [u_0, ..., u_{k-1}], spoke paths [Q_i] permitted at [u_i],
    and rim paths [R_i] from [u_i] to [u_{i+1}] such that [R_i·Q_{i+1}] is
    permitted at [u_i] and ranked at least as well as [Q_i].  Absence of a
    dispute wheel is the broadest known sufficient condition for convergence
    of the routing algorithm (referenced by Ex. A.1 of the paper). *)

type spoke = {
  pivot : Path.node;
  direct : Path.t;  (** Q_i, permitted at [pivot] *)
  rim_route : Path.t;
      (** R_i·Q_{i+1}, permitted at [pivot] and ranked no worse than Q_i *)
}

type wheel = spoke list
(** In cyclic order: the rim route of each spoke reaches the next spoke's
    pivot and continues along the next spoke's direct path. *)

val check_wheel : Instance.t -> wheel -> bool
(** Verifies the dispute-wheel conditions for an explicit candidate. *)

val find : Instance.t -> wheel option
(** Finds a dispute wheel if one exists, by cycle search on the dispute
    digraph whose vertices are (node, permitted path) pairs. *)

val has_wheel : Instance.t -> bool

val pp_wheel : Instance.t -> Format.formatter -> wheel -> unit
