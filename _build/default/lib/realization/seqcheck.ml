let is_exact ~original ~realized =
  List.length original = List.length realized
  && List.for_all2 Spp.Assignment.equal original realized

(* DP over (i, j): can realized[0..j) be split into blocks spelling
   original[0..i)?  Block boundaries are ambiguous when consecutive original
   elements are equal, hence the dynamic program rather than a greedy scan. *)
let is_repetition ~original ~realized =
  let orig = Array.of_list original and real = Array.of_list realized in
  let n = Array.length orig and m = Array.length real in
  if n = 0 then m = 0
  else begin
    let reachable = Array.make_matrix (n + 1) (m + 1) false in
    reachable.(0).(0) <- true;
    for i = 1 to n do
      for j = 1 to m do
        if Spp.Assignment.equal real.(j - 1) orig.(i - 1) then
          (* either this extends the current block (i, j-1) or starts the
             block for original element i (i-1, j-1) *)
          reachable.(i).(j) <- reachable.(i).(j - 1) || reachable.(i - 1).(j - 1)
      done
    done;
    reachable.(n).(m)
  end

let is_subsequence ~original ~realized =
  let rec loop orig real =
    match (orig, real) with
    | [], _ -> true
    | _, [] -> false
    | o :: orest, r :: rrest ->
      if Spp.Assignment.equal o r then loop orest rrest else loop orig rrest
  in
  loop original realized

let check level ~original ~realized =
  match level with
  | Relation.Exact -> is_exact ~original ~realized
  | Relation.Repetition -> is_repetition ~original ~realized
  | Relation.Subsequence -> is_subsequence ~original ~realized
  | Relation.Oscillation -> true
