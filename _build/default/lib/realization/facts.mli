(** The paper's foundational realization results (Sec. 3.2–3.3) as a fact
    base for the {!Closure} derivation engine. *)

type positive = {
  realizer : Engine.Model.t;  (** the model B doing the realizing *)
  realized : Engine.Model.t;  (** the model A being realized *)
  level : Relation.level;
  source : string;  (** citation, e.g. "Prop. 3.3(1)" *)
}

type negative = {
  non_realizer : Engine.Model.t;  (** B, which cannot realize A... *)
  target : Engine.Model.t;  (** ...the model A *)
  at_level : Relation.level;  (** ...at this level (hence at any stronger) *)
  why : string;
}

val positives : positive list
(** Props. 3.3, 3.4, 3.6; Thms. 3.5, 3.7 — instantiated over all
    applicable models (63 syntactic inclusions, 2 widenings, 8 splittings,
    2 serializations, 1 coalescing). *)

val negatives : negative list
(** Thms. 3.8, 3.9 (oscillation non-preservation) and Props. 3.10–3.13
    (non-realizability at exact/repetition levels), witnessed by
    Examples A.1–A.5. *)
