open Engine

type constr = { lo : int; hi : int }

let parse_cell s =
  match s with
  | "" -> Some { lo = 0; hi = 4 }
  | "-" -> None (* diagonal *)
  | "-1" -> Some { lo = 0; hi = 0 }
  | "2" -> Some { lo = 2; hi = 2 }
  | "3" -> Some { lo = 3; hi = 3 }
  | "4" -> Some { lo = 4; hi = 4 }
  | "2,3" -> Some { lo = 2; hi = 3 }
  | ">=2" -> Some { lo = 2; hi = 4 }
  | ">=3" -> Some { lo = 3; hi = 4 }
  | "<=2" -> Some { lo = 0; hi = 2 }
  | "<=3" -> Some { lo = 0; hi = 3 }
  | _ -> invalid_arg ("Paper_tables: unknown cell " ^ s)

let combine realized cols cells =
  List.filter_map
    (fun (realizer, cell) ->
      match parse_cell cell with
      | Some c -> Some (realized, realizer, c)
      | None -> None)
    (List.combine cols cells)

let table columns rows =
  let cols = List.map (fun s -> Option.get (Model.of_string s)) columns in
  if List.length rows <> List.length Model.all then
    invalid_arg "Paper_tables: wrong row count";
  List.concat (List.map2 (fun realized cells -> combine realized cols cells) Model.all rows)

let reliable_columns =
  [ "R1O"; "RMO"; "REO"; "R1S"; "RMS"; "RES"; "R1F"; "RMF"; "REF"; "R1A"; "RMA"; "REA" ]

let unreliable_columns =
  [ "U1O"; "UMO"; "UEO"; "U1S"; "UMS"; "UES"; "U1F"; "UMF"; "UEF"; "U1A"; "UMA"; "UEA" ]

let fig3 =
  table reliable_columns
    [
      (* R1O *) [ "-"; "4"; "-1"; "4"; "4"; "4"; "4"; "4"; "-1"; "-1"; "-1"; "-1" ];
      (* RMO *) [ "3"; "-"; "-1"; "3"; "4"; "4"; "3"; "4"; "-1"; "-1"; "-1"; "-1" ];
      (* REO *) [ "3"; "4"; "-"; "3"; "4"; "4"; "3"; "4"; "4"; "-1"; "-1"; "-1" ];
      (* R1S *) [ "2"; "2"; "-1"; "-"; "4"; "4"; ">=2"; ">=2"; "-1"; "-1"; "-1"; "-1" ];
      (* RMS *) [ "2"; "2"; "-1"; "3"; "-"; "4"; "2,3"; ">=2"; "-1"; "-1"; "-1"; "-1" ];
      (* RES *) [ "2"; "2"; "-1"; "3"; "4"; "-"; "2,3"; ">=2"; "-1"; "-1"; "-1"; "-1" ];
      (* R1F *) [ "2"; "2"; "-1"; "4"; "4"; "4"; "-"; "4"; "-1"; "-1"; "-1"; "-1" ];
      (* RMF *) [ "2"; "2"; "-1"; "3"; "4"; "4"; "3"; "-"; "-1"; "-1"; "-1"; "-1" ];
      (* REF *) [ "2"; "2"; "<=2"; "3"; "4"; "4"; "3"; "4"; "-"; "-1"; "-1"; "-1" ];
      (* R1A *) [ "2"; "2"; "<=2"; "4"; "4"; "4"; "4"; "4"; ""; "-"; "4"; "" ];
      (* RMA *) [ "2"; "2"; "<=2"; "3"; "4"; "4"; "3"; "4"; ""; "3"; "-"; "" ];
      (* REA *) [ "2"; "2"; "<=2"; "3"; "4"; "4"; "3"; "4"; "4"; "3"; "4"; "-" ];
      (* U1O *) [ ">=2"; ">=2"; "-1"; "4"; "4"; "4"; ">=2"; ">=2"; "-1"; "-1"; "-1"; "-1" ];
      (* UMO *) [ "2,3"; ">=2"; "-1"; "3"; ">=3"; ">=3"; "2,3"; ">=2"; "-1"; "-1"; "-1"; "-1" ];
      (* UEO *) [ "2,3"; ">=2"; ""; "3"; ">=3"; ">=3"; "2,3"; ">=2"; ""; "-1"; "-1"; "-1" ];
      (* U1S *) [ "2"; "2"; "-1"; ">=3"; ">=3"; ">=3"; ">=2"; ">=2"; "-1"; "-1"; "-1"; "-1" ];
      (* UMS *) [ "2"; "2"; "-1"; "3"; ">=3"; ">=3"; "2,3"; ">=2"; "-1"; "-1"; "-1"; "-1" ];
      (* UES *) [ "2"; "2"; "-1"; "3"; ">=3"; ">=3"; "2,3"; ">=2"; "-1"; "-1"; "-1"; "-1" ];
      (* U1F *) [ "2"; "2"; "-1"; ">=3"; ">=3"; ">=3"; ">=2"; ">=2"; "-1"; "-1"; "-1"; "-1" ];
      (* UMF *) [ "2"; "2"; "-1"; "3"; ">=3"; ">=3"; "2,3"; ">=2"; "-1"; "-1"; "-1"; "-1" ];
      (* UEF *) [ "2"; "2"; "<=2"; "3"; ">=3"; ">=3"; "2,3"; ">=2"; ""; "-1"; "-1"; "-1" ];
      (* U1A *) [ "2"; "2"; "<=2"; ">=3"; ">=3"; ">=3"; ">=2"; ">=2"; ""; ""; ""; "" ];
      (* UMA *) [ "2"; "2"; "<=2"; "3"; ">=3"; ">=3"; "2,3"; ">=2"; ""; "<=3"; ""; "" ];
      (* UEA *) [ "2"; "2"; "<=2"; "3"; ">=3"; ">=3"; "2,3"; ">=2"; ""; "<=3"; ""; "" ];
    ]

let fig4 =
  table unreliable_columns
    [
      (* R1O *) [ "4"; "4"; ""; "4"; "4"; "4"; "4"; "4"; ""; ""; ""; "" ];
      (* RMO *) [ "3"; "4"; ""; ">=3"; "4"; "4"; ">=3"; "4"; ""; ""; ""; "" ];
      (* REO *) [ "3"; "4"; "4"; ">=3"; "4"; "4"; ">=3"; "4"; "4"; ""; ""; "" ];
      (* R1S *) [ ">=3"; ">=3"; ""; "4"; "4"; "4"; ">=3"; ">=3"; ""; ""; ""; "" ];
      (* RMS *) [ "3"; ">=3"; ""; ">=3"; "4"; "4"; ">=3"; ">=3"; ""; ""; ""; "" ];
      (* RES *) [ "3"; ">=3"; ""; ">=3"; "4"; "4"; ">=3"; ">=3"; ""; ""; ""; "" ];
      (* R1F *) [ ">=3"; ">=3"; ""; "4"; "4"; "4"; "4"; "4"; ""; ""; ""; "" ];
      (* RMF *) [ "3"; ">=3"; ""; ">=3"; "4"; "4"; ">=3"; "4"; ""; ""; ""; "" ];
      (* REF *) [ "3"; ">=3"; ""; ">=3"; "4"; "4"; ">=3"; "4"; "4"; ""; ""; "" ];
      (* R1A *) [ ">=3"; ">=3"; ""; "4"; "4"; "4"; "4"; "4"; ""; "4"; "4"; "" ];
      (* RMA *) [ "3"; ">=3"; ""; ">=3"; "4"; "4"; ">=3"; "4"; ""; ">=3"; "4"; "" ];
      (* REA *) [ "3"; ">=3"; ""; ">=3"; "4"; "4"; ">=3"; "4"; "4"; ">=3"; "4"; "4" ];
      (* U1O *) [ "-"; "4"; ""; "4"; "4"; "4"; "4"; "4"; ""; ""; ""; "" ];
      (* UMO *) [ "3"; "-"; ""; ">=3"; "4"; "4"; ">=3"; "4"; ""; ""; ""; "" ];
      (* UEO *) [ "3"; "4"; "-"; ">=3"; "4"; "4"; ">=3"; "4"; "4"; ""; ""; "" ];
      (* U1S *) [ ">=3"; ">=3"; ""; "-"; "4"; "4"; ">=3"; ">=3"; ""; ""; ""; "" ];
      (* UMS *) [ "3"; ">=3"; ""; ">=3"; "-"; "4"; ">=3"; ">=3"; ""; ""; ""; "" ];
      (* UES *) [ "3"; ">=3"; ""; ">=3"; "4"; "-"; ">=3"; ">=3"; ""; ""; ""; "" ];
      (* U1F *) [ ">=3"; ">=3"; ""; "4"; "4"; "4"; "-"; "4"; ""; ""; ""; "" ];
      (* UMF *) [ "3"; ">=3"; ""; ">=3"; "4"; "4"; ">=3"; "-"; ""; ""; ""; "" ];
      (* UEF *) [ "3"; ">=3"; ""; ">=3"; "4"; "4"; ">=3"; "4"; "-"; ""; ""; "" ];
      (* U1A *) [ ">=3"; ">=3"; ""; "4"; "4"; "4"; "4"; "4"; ""; "-"; "4"; "" ];
      (* UMA *) [ "3"; ">=3"; ""; ">=3"; "4"; "4"; ">=3"; "4"; ""; ">=3"; "-"; "" ];
      (* UEA *) [ "3"; ">=3"; ""; ">=3"; "4"; "4"; ">=3"; "4"; "4"; ">=3"; "4"; "-" ];
    ]

type verdict = Match | Weaker | Stronger | Contradiction

let pp_verdict ppf v =
  Fmt.string ppf
    (match v with
    | Match -> "match"
    | Weaker -> "weaker"
    | Stronger -> "stronger"
    | Contradiction -> "CONTRADICTION")

let compare_cell ~expected (c : Closure.cell) =
  let dlo = c.Closure.proven and dhi = c.Closure.disproven - 1 in
  if dlo > expected.hi || dhi < expected.lo then Contradiction
  else if dlo = expected.lo && dhi = expected.hi then Match
  else if dlo >= expected.lo && dhi <= expected.hi then Stronger
  else if dlo <= expected.lo && dhi >= expected.hi then Weaker
  else
    (* Mixed: tighter on one bound, looser on the other. *)
    Stronger

let diff closure =
  List.map
    (fun (realized, realizer, expected) ->
      let cell = Closure.cell closure ~realized ~realizer in
      (realized, realizer, expected, cell, compare_cell ~expected cell))
    (fig3 @ fig4)

let tally closure =
  let d = diff closure in
  List.map
    (fun v -> (v, List.length (List.filter (fun (_, _, _, _, v') -> v' = v) d)))
    [ Match; Weaker; Stronger; Contradiction ]

let summary closure =
  let buf = Buffer.create 1024 in
  let t = tally closure in
  Buffer.add_string buf "Derived matrix vs. paper Figures 3-4 (552 off-diagonal cells):\n";
  List.iter
    (fun (v, n) -> Buffer.add_string buf (Fmt.str "  %a: %d\n" pp_verdict v n))
    t;
  let interesting =
    List.filter (fun (_, _, _, _, v) -> v <> Match) (diff closure)
  in
  if interesting <> [] then begin
    Buffer.add_string buf "Cells differing from the paper:\n";
    List.iter
      (fun (realized, realizer, e, c, v) ->
        Buffer.add_string buf
          (Fmt.str "  %a realized-by %a: paper [%d..%d], derived [%d..%d] (%a)\n"
             Model.pp realized Model.pp realizer e.lo e.hi c.Closure.proven
             (c.Closure.disproven - 1) pp_verdict v))
      interesting
  end;
  Buffer.contents buf
