type level = Oscillation | Subsequence | Repetition | Exact

let to_int = function Oscillation -> 1 | Subsequence -> 2 | Repetition -> 3 | Exact -> 4

let of_int = function
  | 1 -> Some Oscillation
  | 2 -> Some Subsequence
  | 3 -> Some Repetition
  | 4 -> Some Exact
  | _ -> None

let compare a b = Int.compare (to_int a) (to_int b)
let min_level a b = if compare a b <= 0 then a else b

let weaker l =
  List.filter (fun l' -> compare l' l <= 0) [ Exact; Repetition; Subsequence; Oscillation ]

let to_string = function
  | Oscillation -> "oscillation-preserving"
  | Subsequence -> "subsequence"
  | Repetition -> "repetition"
  | Exact -> "exact"

let pp ppf l = Fmt.string ppf (to_string l)
