lib/realization/paper_tables.mli: Closure Engine Format
