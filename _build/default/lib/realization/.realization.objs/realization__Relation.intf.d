lib/realization/relation.mli: Format
