lib/realization/paper_tables.ml: Buffer Closure Engine Fmt List Model Option
