lib/realization/seqcheck.ml: Array List Relation Spp
