lib/realization/closure.mli: Engine Facts
