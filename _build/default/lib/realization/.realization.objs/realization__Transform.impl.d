lib/realization/transform.ml: Activation Channel Engine Fmt Hashtbl Instance List Model Option Path Relation Spp State Step
