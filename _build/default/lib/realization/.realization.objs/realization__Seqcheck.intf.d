lib/realization/seqcheck.mli: Relation Spp
