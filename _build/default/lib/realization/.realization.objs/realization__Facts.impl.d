lib/realization/facts.ml: Engine List Model Option Relation
