lib/realization/closure.ml: Array Buffer Engine Facts Fmt Hashtbl List Model Option Printf Relation String
