lib/realization/export.ml: Buffer Closure Engine Filename Fmt List Model Out_channel Paper_tables Printf String Sys
