lib/realization/relation.ml: Fmt Int List
