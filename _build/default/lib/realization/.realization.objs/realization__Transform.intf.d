lib/realization/transform.mli: Engine Format Relation Spp
