lib/realization/export.mli: Closure Engine
