lib/realization/facts.mli: Engine Relation
