open Engine

type positive = {
  realizer : Model.t;
  realized : Model.t;
  level : Relation.level;
  source : string;
}

type negative = {
  non_realizer : Model.t;
  target : Model.t;
  at_level : Relation.level;
  why : string;
}

let m s = Option.get (Model.of_string s)

let positives =
  (* Prop. 3.3: syntactic inclusions give exact realization.  Rather than
     enumerating the four clauses we state the general observation they all
     instantiate: whenever every activation sequence of A is legal in B, B
     realizes A exactly.  [Model.includes] captures precisely the paper's
     four clauses and their compositions. *)
  let inclusions =
    List.concat_map
      (fun realized ->
        List.filter_map
          (fun realizer ->
            if (not (Model.equal realizer realized)) && Model.includes realizer realized
            then
              Some
                { realizer; realized; level = Relation.Exact; source = "Prop. 3.3" }
            else None)
          Model.all)
      Model.all
  in
  let per_rel f = List.map f [ Model.Reliable; Model.Unreliable ] in
  let per_rel_msg f =
    List.concat_map
      (fun rel ->
        List.map (fun msg -> f rel msg)
          [ Model.M_one; Model.M_some; Model.M_forced; Model.M_all ])
      [ Model.Reliable; Model.Unreliable ]
  in
  let widenings =
    per_rel (fun rel ->
        {
          realizer = Model.make rel Model.N_every Model.M_some;
          realized = Model.make rel Model.N_multi Model.M_some;
          level = Relation.Exact;
          source = "Prop. 3.4";
        })
  in
  let splittings =
    per_rel_msg (fun rel msg ->
        {
          realizer = Model.make rel Model.N_one msg;
          realized = Model.make rel Model.N_multi msg;
          level = Relation.Repetition;
          source = "Thm. 3.5";
        })
  in
  let serializations =
    [
      {
        realizer = m "R1O";
        realized = m "R1S";
        level = Relation.Subsequence;
        source = "Prop. 3.6";
      };
      {
        realizer = m "U1O";
        realized = m "U1S";
        level = Relation.Repetition;
        source = "Prop. 3.6";
      };
      {
        realizer = m "R1S";
        realized = m "U1O";
        level = Relation.Exact;
        source = "Thm. 3.7";
      };
    ]
  in
  inclusions @ widenings @ splittings @ serializations

let negatives =
  let osc non_realizer target why =
    { non_realizer = m non_realizer; target = m target; at_level = Relation.Oscillation; why }
  in
  let no_at level non_realizer target why =
    { non_realizer = m non_realizer; target = m target; at_level = level; why }
  in
  (* Thm. 3.8 (Ex. A.1, DISAGREE) *)
  List.map
    (fun b -> osc b "R1O" "Thm. 3.8 (Ex. A.1)")
    [ "REO"; "REF"; "R1A"; "RMA"; "REA" ]
  (* Thm. 3.9 (Ex. A.2, Fig. 6) *)
  @ List.concat_map
      (fun b ->
        List.map (fun a -> osc b a "Thm. 3.9 (Ex. A.2)") [ "REO"; "REF" ])
      [ "R1A"; "RMA"; "REA" ]
  @ [
      no_at Relation.Exact "R1O" "REO" "Prop. 3.10 (Ex. A.3)";
      no_at Relation.Repetition "R1O" "REA" "Prop. 3.11 (Ex. A.4)";
      no_at Relation.Exact "R1S" "REA" "Prop. 3.12 (Ex. A.5)";
      no_at Relation.Exact "R1S" "REO" "Prop. 3.13 (Ex. A.5)";
    ]
