(** Export of the derived realization matrices as Markdown, for inclusion
    in reports and for diffing against the paper's figures. *)

val matrix_markdown :
  Closure.t -> realizers:Engine.Model.t list -> title:string -> string
(** A Markdown table in the layout of Figures 3/4. *)

val diff_markdown : Closure.t -> string
(** The agreement summary and per-cell differences as Markdown. *)

val write_all : Closure.t -> dir:string -> string list
(** Writes [fig3.md], [fig4.md] and [diff.md] into [dir] (created if
    missing) and returns the paths. *)
