(** Realization relations between communication models (Sec. 3.1).

    The four levels form a chain: exact realization implies realization with
    repetition, which implies realization as a subsequence, which implies
    oscillation preservation. *)

type level =
  | Oscillation  (** oscillation preservation (Def. 3.1); numeric value 1 *)
  | Subsequence  (** realization as a subsequence; 2 *)
  | Repetition  (** exact realization with repetition; 3 *)
  | Exact  (** exact realization; 4 *)

val to_int : level -> int
val of_int : int -> level option
val compare : level -> level -> int
val min_level : level -> level -> level
val weaker : level -> level list
(** All levels implied by the given one, strongest first (including it). *)

val pp : Format.formatter -> level -> unit
val to_string : level -> string
