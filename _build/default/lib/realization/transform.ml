open Engine
open Spp

type rule =
  | Embed
  | Widen_multi_to_every
  | Split_multi_to_one
  | Serialize_r1s_to_r1o
  | Serialize_u1s_to_u1o
  | Coalesce_u1o_to_r1s

let pp_rule ppf r =
  Fmt.string ppf
    (match r with
    | Embed -> "embed (Prop. 3.3)"
    | Widen_multi_to_every -> "widen M->E (Prop. 3.4)"
    | Split_multi_to_one -> "split M->1 (Thm. 3.5)"
    | Serialize_r1s_to_r1o -> "serialize R1S->R1O (Prop. 3.6)"
    | Serialize_u1s_to_u1o -> "serialize U1S->U1O (Prop. 3.6)"
    | Coalesce_u1o_to_r1s -> "coalesce U1O->R1S (Thm. 3.7)")

let rule_level = function
  | Embed | Widen_multi_to_every | Coalesce_u1o_to_r1s -> Relation.Exact
  | Split_multi_to_one | Serialize_u1s_to_u1o -> Relation.Repetition
  | Serialize_r1s_to_r1o -> Relation.Subsequence

type edge = { rule : rule; source : Model.t; target : Model.t }

let edges =
  let m = Model.make in
  let rels = [ Model.Reliable; Model.Unreliable ] in
  let msgs = [ Model.M_one; Model.M_some; Model.M_forced; Model.M_all ] in
  let embeds =
    List.concat_map
      (fun source ->
        List.filter_map
          (fun target ->
            if (not (Model.equal source target)) && Model.includes target source then
              Some { rule = Embed; source; target }
            else None)
          Model.all)
      Model.all
  in
  let widens =
    List.map
      (fun rel ->
        {
          rule = Widen_multi_to_every;
          source = m rel Model.N_multi Model.M_some;
          target = m rel Model.N_every Model.M_some;
        })
      rels
  in
  let splits =
    List.concat_map
      (fun rel ->
        List.map
          (fun msg ->
            {
              rule = Split_multi_to_one;
              source = m rel Model.N_multi msg;
              target = m rel Model.N_one msg;
            })
          msgs)
      rels
  in
  embeds @ widens @ splits
  @ [
      {
        rule = Serialize_r1s_to_r1o;
        source = m Model.Reliable Model.N_one Model.M_some;
        target = m Model.Reliable Model.N_one Model.M_one;
      };
      {
        rule = Serialize_u1s_to_u1o;
        source = m Model.Unreliable Model.N_one Model.M_some;
        target = m Model.Unreliable Model.N_one Model.M_one;
      };
      {
        rule = Coalesce_u1o_to_r1s;
        source = m Model.Unreliable Model.N_one Model.M_one;
        target = m Model.Reliable Model.N_one Model.M_some;
      };
    ]

(* Simulate a source run, yielding (state_before, entry, outcome) triples. *)
let simulate inst entries =
  let init = State.initial inst in
  let _, acc =
    List.fold_left
      (fun (st, acc) entry ->
        let outcome = Step.apply inst st entry in
        (outcome.Step.state, (st, entry, outcome) :: acc))
      (init, []) entries
  in
  List.rev acc

let the_single_active (entry : Activation.t) =
  match entry.Activation.active with
  | [ v ] -> v
  | _ -> invalid_arg "Transform: single-node entry expected"

let the_single_read (entry : Activation.t) =
  match entry.Activation.reads with
  | [ r ] -> r
  | _ -> invalid_arg "Transform: single-read entry expected"

let effective_count (r : Activation.read) ~available =
  match r.Activation.count with
  | Activation.All -> available
  | Activation.Finite f -> min f available

(* A read that is always a no-op: one message from a channel into the
   destination (never tracked) if the node has such a channel, otherwise a
   zero-message read.  Used to keep an announcing step alive when all its
   real reads are elided. *)
let harmless_read inst v ~count =
  match Instance.neighbors inst v with
  | u :: _ when v = Instance.dest inst -> Activation.read ~count (Channel.id ~src:u ~dst:v)
  | _ -> invalid_arg "Transform: no harmless read available"

(* A target entry that provably changes nothing, used in place of source
   steps whose own effect is nil so that the realized sequence still covers
   every original index (Def. 3.2 requires at least one realized step per
   original step for exact-with-repetition, and preserves multiplicities for
   subsequence realization).

   If the destination has announced, reading one of its (untracked, hence
   empty) in-channels is a no-op.  Before the destination's first
   announcement no message has ever been written, so every channel is empty
   and any single-channel read by a non-destination node is a no-op. *)
let noop_entry inst (before : State.t) ~count =
  let dest = Instance.dest inst in
  if not (Path.is_epsilon (State.announced before dest)) then
    Activation.single dest [ harmless_read inst dest ~count ]
  else
    let v =
      match List.find_opt (fun v -> v <> dest) (Instance.nodes inst) with
      | Some v -> v
      | None -> invalid_arg "Transform: single-node instance"
    in
    match Instance.neighbors inst v with
    | u :: _ -> Activation.single v [ Activation.read ~count (Channel.id ~src:u ~dst:v) ]
    | [] -> invalid_arg "Transform: isolated node"

let widen_multi_to_every inst entries =
  List.map
    (fun (entry : Activation.t) ->
      let v = the_single_active entry in
      let present c =
        List.exists
          (fun (r : Activation.read) -> Channel.equal_id r.Activation.chan c)
          entry.Activation.reads
      in
      let required = Model.required_channels inst v in
      let padding =
        List.filter_map
          (fun c ->
            if present c then None
            else Some (Activation.read ~count:(Activation.Finite 0) c))
          required
      in
      (* Reads of channels into the destination are no-ops and are not part
         of the E dimension's required set: drop them. *)
      let kept =
        List.filter
          (fun (r : Activation.read) ->
            List.exists (Channel.equal_id r.Activation.chan) required)
          entry.Activation.reads
      in
      { entry with Activation.reads = kept @ padding })
    entries

let rank_or_max inst v p =
  if Path.is_epsilon p then max_int
  else match Instance.rank inst v p with Some r -> r | None -> max_int

let split_multi_to_one inst ~msg entries =
  (* A message count that is legal for the target model's y dimension and
     consumes nothing when used on an empty channel. *)
  let noop_count =
    match msg with
    | Model.M_one -> Activation.Finite 1
    | Model.M_some | Model.M_forced | Model.M_all -> Activation.All
  in
  let sim = simulate inst entries in
  List.concat_map
    (fun ((before : State.t), (entry : Activation.t), (outcome : Step.outcome)) ->
      let v = the_single_active entry in
      match entry.Activation.reads with
      | [] ->
        if outcome.Step.announcements = [] then [ noop_entry inst before ~count:noop_count ]
        else [ Activation.single v [ harmless_read inst v ~count:noop_count ] ]
      | reads ->
        let p_new = State.pi outcome.Step.state v
        and p_old = State.pi before v in
        let chan_of p =
          match Path.next_hop p with
          | Some u -> Some (Channel.id ~src:u ~dst:v)
          | None -> None
        in
        let c_new = chan_of p_new and c_old = chan_of p_old in
        let is_chan co (r : Activation.read) =
          match co with
          | Some c -> Channel.equal_id r.Activation.chan c
          | None -> false
        in
        let ordered =
          match (c_new, c_old) with
          | Some cn, Some co when Channel.equal_id cn co ->
            (* Both the new and old routes come through the same channel:
               put it first if the new route is preferred, last otherwise
               (Thm. 3.5). *)
            let this, others = List.partition (is_chan c_new) reads in
            if rank_or_max inst v p_new <= rank_or_max inst v p_old then this @ others
            else others @ this
          | _ ->
            let firsts, rest = List.partition (is_chan c_new) reads in
            let lasts, middle = List.partition (is_chan c_old) rest in
            firsts @ middle @ lasts
        in
        List.map (fun r -> Activation.single v [ r ]) ordered)
    sim

(* Prop. 3.6's "flagged messages".  Serializing a k-message read into k
   single-message reads makes the target pass through intermediate route
   choices, and those are announced: the target's channels contain the
   source's messages interleaved with extra intermediate announcements.  A
   later source read of f messages must therefore be expanded to however
   many single reads it takes to consume messages up to and including the
   f-th {e source-corresponding} message of the target channel.  We mirror
   the target channels with a tag per message ([true] = corresponds to a
   source message): after emitting the block for a source step, the last
   message the block pushed onto a channel also pushed by the source step is
   the corresponding one; every other push is an extra. *)
let serialize_r1s_to_r1o inst entries =
  let sim = simulate inst entries in
  let target_state = ref (State.initial inst) in
  let tags : (Channel.id, bool list) Hashtbl.t = Hashtbl.create 17 in
  let get_tags c = Option.value ~default:[] (Hashtbl.find_opt tags c) in
  let emitted = ref [] in
  let emit entry =
    let outcome = Step.apply inst !target_state entry in
    List.iter
      (fun (c, n) ->
        let rec drop n l =
          if n = 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t
        in
        Hashtbl.replace tags c (drop n (get_tags c)))
      outcome.Step.processed;
    List.iter
      (fun (c, _) -> Hashtbl.replace tags c (get_tags c @ [ false ]))
      outcome.Step.pushed;
    target_state := outcome.Step.state;
    emitted := entry :: !emitted
  in
  let mark_last_source c =
    match List.rev (get_tags c) with
    | last :: rest ->
      assert (not last);
      Hashtbl.replace tags c (List.rev (true :: rest))
    | [] -> assert false
  in
  List.iter
    (fun ((before : State.t), (entry : Activation.t), (outcome : Step.outcome)) ->
      let v = the_single_active entry in
      let r = the_single_read entry in
      let c = r.Activation.chan in
      let available = Channel.length (State.channels before) c in
      let i = effective_count r ~available in
      let single_read () =
        Activation.single v [ Activation.read ~count:(Activation.Finite 1) c ]
      in
      (if i > 0 then begin
         (* Position (1-based) of the i-th source-tagged message in the
            target channel: the number of single reads to emit. *)
         let k =
           let rec scan pos srcs = function
             | [] -> invalid_arg "Transform: source message missing in target"
             | tag :: rest ->
               let srcs = if tag then srcs + 1 else srcs in
               if srcs = i then pos else scan (pos + 1) srcs rest
           in
           scan 1 0 (get_tags c)
         in
         for _ = 1 to k do
           emit (single_read ())
         done
       end
       else if outcome.Step.announcements = [] then
         emit (noop_entry inst !target_state ~count:(Activation.Finite 1))
       else if Channel.length (State.channels !target_state) c = 0 then
         (* Announcing step with nothing to read (the destination's first
            activation): a single read of the empty channel is a no-op that
            still lets the node announce. *)
         emit (single_read ())
       else emit (Activation.single v [ harmless_read inst v ~count:(Activation.Finite 1) ]));
      (* Retag: the source step's own pushes correspond to the last message
         this block pushed onto each of those channels. *)
      List.iter (fun (c, _) -> mark_last_source c) outcome.Step.pushed)
    sim;
  List.rev !emitted

let serialize_u1s_to_u1o inst entries =
  let sim = simulate inst entries in
  List.concat_map
    (fun ((before : State.t), (entry : Activation.t), (outcome : Step.outcome)) ->
      let v = the_single_active entry in
      let r = the_single_read entry in
      let c = r.Activation.chan in
      let available = Channel.length (State.channels before) c in
      let i = effective_count r ~available in
      if i > 0 then begin
        let kept =
          (* largest index in 1..i not dropped *)
          let rec scan best j =
            if j > i then best
            else scan (if Activation.IntSet.mem j r.Activation.drops then best else Some j) (j + 1)
          in
          scan None 1
        in
        List.init i (fun k ->
            let j = k + 1 in
            let drops = if kept = Some j then [] else [ 1 ] in
            Activation.single v
              [ Activation.read ~drops ~count:(Activation.Finite 1) c ])
      end
      else if outcome.Step.announcements = [] then
        [ noop_entry inst before ~count:(Activation.Finite 1) ]
      else if available = 0 then
        [ Activation.single v [ Activation.read ~count:(Activation.Finite 1) c ] ]
      else [ Activation.single v [ harmless_read inst v ~count:(Activation.Finite 1) ] ])
    sim

let coalesce_u1o_to_r1s inst entries =
  let sim = simulate inst entries in
  let pending = Hashtbl.create 17 in
  let get c = Option.value ~default:0 (Hashtbl.find_opt pending c) in
  List.map
    (fun ((before : State.t), (entry : Activation.t), (_ : Step.outcome)) ->
      let v = the_single_active entry in
      let r = the_single_read entry in
      let c = r.Activation.chan in
      let available = Channel.length (State.channels before) c in
      if available = 0 then
        Activation.single v [ Activation.read ~count:(Activation.Finite 0) c ]
      else if Activation.IntSet.mem 1 r.Activation.drops then begin
        Hashtbl.replace pending c (get c + 1);
        Activation.single v [ Activation.read ~count:(Activation.Finite 0) c ]
      end
      else begin
        let k = get c + 1 in
        Hashtbl.replace pending c 0;
        Activation.single v [ Activation.read ~count:(Activation.Finite k) c ]
      end)
    sim

let apply_edge edge inst entries =
  match edge.rule with
  | Embed -> entries
  | Widen_multi_to_every -> widen_multi_to_every inst entries
  | Split_multi_to_one -> split_multi_to_one inst ~msg:edge.target.Model.msg entries
  | Serialize_r1s_to_r1o -> serialize_r1s_to_r1o inst entries
  | Serialize_u1s_to_u1o -> serialize_u1s_to_u1o inst entries
  | Coalesce_u1o_to_r1s -> coalesce_u1o_to_r1s inst entries

type path = edge list

let path_level path =
  List.fold_left
    (fun acc e -> Relation.min_level acc (rule_level e.rule))
    Relation.Exact path

(* Widest-path search over the edge graph: maximize the minimum rule level
   along the chain, breaking ties by fewer edges. *)
let route ~source ~target =
  if Model.equal source target then Some []
  else begin
    let best : (Model.t, Relation.level * path) Hashtbl.t = Hashtbl.create 29 in
    Hashtbl.replace best source (Relation.Exact, []);
    let improved = ref true in
    while !improved do
      improved := false;
      List.iter
        (fun e ->
          match Hashtbl.find_opt best e.source with
          | None -> ()
          | Some (lvl, path) ->
            let lvl' = Relation.min_level lvl (rule_level e.rule) in
            let better =
              match Hashtbl.find_opt best e.target with
              | None -> true
              | Some (old, old_path) ->
                Relation.compare lvl' old > 0
                || (Relation.compare lvl' old = 0
                   && List.length path + 1 < List.length old_path)
            in
            if better then begin
              Hashtbl.replace best e.target (lvl', path @ [ e ]);
              improved := true
            end)
        edges
    done;
    Option.map snd (Hashtbl.find_opt best target)
  end

let apply_path path inst entries =
  List.fold_left (fun acc e -> apply_edge e inst acc) entries path
