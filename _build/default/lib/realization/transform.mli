(** Constructive realization transforms: executable versions of the
    positive proofs of Sec. 3.2.

    Each rule maps a finite activation sequence that is legal in its source
    model to one legal in its target model whose induced path-assignment
    sequence relates to the original at the rule's level (checkable with
    {!Seqcheck}). *)

type rule =
  | Embed
      (** Prop. 3.3: the target model syntactically includes the source;
          the sequence is reused verbatim.  Exact. *)
  | Widen_multi_to_every
      (** Prop. 3.4 (wMS → wES): pad each entry with zero-message reads of
          the missing channels.  Exact. *)
  | Split_multi_to_one
      (** Thm. 3.5 (wMy → w1y): split each entry into one step per channel,
          processing first the channel supporting the newly chosen route and
          last the channel supporting the previous one.  Repetition. *)
  | Serialize_r1s_to_r1o
      (** Prop. 3.6 (R1S → R1O): replace each k-message read by k
          single-message reads.  Subsequence. *)
  | Serialize_u1s_to_u1o
      (** Prop. 3.6 (U1S → U1O): replace each read by single-message reads
          that drop everything except the message the source actually kept.
          Repetition. *)
  | Coalesce_u1o_to_r1s
      (** Thm. 3.7 (U1O → R1S): turn dropped reads into zero-message reads
          and charge the skipped messages to the next undropped read.
          Exact. *)

val pp_rule : Format.formatter -> rule -> unit

val rule_level : rule -> Relation.level

type edge = { rule : rule; source : Engine.Model.t; target : Engine.Model.t }

val edges : edge list
(** Every applicable (rule, source, target) triple over the 24 models. *)

val apply_edge : edge -> Spp.Instance.t -> Engine.Activation.t list -> Engine.Activation.t list
(** Transforms a source-legal sequence into a target-legal one.  Rules that
    need run-time information (message counts, chosen routes) simulate the
    source execution internally. *)

type path = edge list
(** A chain of edges; the composite level is the minimum of the rules'. *)

val path_level : path -> Relation.level

val route : source:Engine.Model.t -> target:Engine.Model.t -> path option
(** A strongest-level chain of constructive edges from [source] to [target]
    (i.e. a constructive witness that [target] realizes [source]), if one
    exists. *)

val apply_path : path -> Spp.Instance.t -> Engine.Activation.t list -> Engine.Activation.t list
