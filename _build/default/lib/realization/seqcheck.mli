(** Finite-trace checkers for the realization relations of Def. 3.2.

    Both sequences should include the initial assignment π(0) so that a
    transformed execution that begins with no-op steps still matches. *)

val is_exact : original:Spp.Assignment.t list -> realized:Spp.Assignment.t list -> bool
(** Same length and pointwise equal. *)

val is_repetition :
  original:Spp.Assignment.t list -> realized:Spp.Assignment.t list -> bool
(** [realized] consists of consecutive non-empty blocks of equal assignments
    whose block values spell out [original] (exact realization with
    repetition).  A trailing incomplete suffix of [original] is not
    accepted: every original element must be covered. *)

val is_subsequence :
  original:Spp.Assignment.t list -> realized:Spp.Assignment.t list -> bool
(** [original] is a (not necessarily contiguous) subsequence of
    [realized]. *)

val check :
  Relation.level ->
  original:Spp.Assignment.t list ->
  realized:Spp.Assignment.t list ->
  bool
(** Dispatch on the level; {!Relation.Oscillation} is not a per-trace
    property and always returns [true] here (use the model checker for
    oscillation claims). *)
