(** Figures 3 and 4 of the paper, transcribed verbatim, and comparison of
    the {!Closure}-derived matrices against them. *)

type constr = {
  lo : int;  (** best level the paper proves (0 = nothing proven) *)
  hi : int;  (** weakest level the paper does not disprove (4 = nothing
                 disproven; 0 = the "-1" cells) *)
}

val fig3 : (Engine.Model.t * Engine.Model.t * constr) list
(** (realized, realizer, constraint) for every off-diagonal cell of Fig. 3
    (realizers are the 12 reliable models). *)

val fig4 : (Engine.Model.t * Engine.Model.t * constr) list
(** Same for Fig. 4 (realizers are the 12 unreliable models). *)

type verdict =
  | Match  (** derived bounds equal the paper's *)
  | Weaker  (** derived bounds are looser (we prove/disprove less) *)
  | Stronger  (** derived bounds are tighter than the paper's *)
  | Contradiction  (** derived facts contradict the paper *)

val pp_verdict : Format.formatter -> verdict -> unit

val compare_cell : expected:constr -> Closure.cell -> verdict

val diff :
  Closure.t ->
  (Engine.Model.t * Engine.Model.t * constr * Closure.cell * verdict) list
(** Both figures' cells compared against the derived matrix. *)

val tally : Closure.t -> (verdict * int) list
val summary : Closure.t -> string
(** Human-readable agreement report for the bench harness. *)
