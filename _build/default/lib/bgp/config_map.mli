(** Mapping of real BGP deployment options onto the paper's taxonomy
    (Sec. 2.3 and Sec. 4).

    - Running over TCP gives reliable channels; over an unreliable
      transport (as in some BGP-like protocols for ad-hoc networks),
      unreliable ones.
    - Event-driven processing of one UPDATE at a time is the
      message-passing model w1O; draining the session queue at each timer
      tick is the queueing model wMS (the paper argues this best matches
      the BGP-4 specification's flexibility).
    - The Route Refresh capability (RFC 2918) used for on-demand polling
      of neighbors' current choices yields the polling models w?A. *)

type transport = Tcp | Unreliable_transport

type processing =
  | Event_driven  (** react to one incoming UPDATE at a time *)
  | Queue_drain  (** process whatever accumulated, possibly partially *)
  | Route_refresh_poll  (** poll neighbors' current state on demand *)

type neighbors_per_event =
  | Single_session  (** one neighbor's session per processing event *)
  | Some_sessions  (** whichever sessions have pending work *)
  | All_sessions  (** all sessions in one pass *)

type t = {
  transport : transport;
  processing : processing;
  sessions : neighbors_per_event;
}

val model_of : t -> Engine.Model.t
val describe : t -> string
val presets : (string * t) list
(** Named configurations: classic event-driven BGP (R1O), specification
    queueing BGP (RMS), route-refresh polling (REA), datagram BGP (UMS),
    and others. *)
