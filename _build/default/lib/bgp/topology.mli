(** AS-level topologies with business relationships.

    Edges are either provider–customer (directed: money flows up) or
    peer–peer.  The provider–customer relation must be acyclic, as on the
    real Internet. *)

type kind = Provider_customer | Peer_peer

type t

val make :
  names:string array ->
  links:(Spp.Path.node * Spp.Path.node * kind) list ->
  t
(** In a [Provider_customer] link the first node is the provider.  Raises
    [Invalid_argument] on duplicate links, self-links, or a cycle in the
    provider–customer hierarchy. *)

val size : t -> int
val names : t -> string array
val name : t -> Spp.Path.node -> string
val neighbors : t -> Spp.Path.node -> Spp.Path.node list

type relationship = Customer | Peer | Provider

val relationship : t -> of_:Spp.Path.node -> Spp.Path.node -> relationship option
(** [relationship t ~of_:u v]: how [u] sees [v] ([Customer] means [v] is a
    customer of [u]); [None] if not adjacent. *)

val edges : t -> (Spp.Path.node * Spp.Path.node * kind) list

type config = {
  tier1 : int;  (** fully peered core ASes *)
  tier2 : int;  (** mid-tier: customers of tier 1, some mutual peering *)
  stubs : int;  (** customers of tier 2 (or tier 1) *)
  seed : int;
}

val default_config : config

val generate : config -> t
(** A random three-tier hierarchy, deterministic in [seed]. *)

val pp : Format.formatter -> t -> unit
