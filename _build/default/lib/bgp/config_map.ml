open Engine

type transport = Tcp | Unreliable_transport

type processing = Event_driven | Queue_drain | Route_refresh_poll

type neighbors_per_event = Single_session | Some_sessions | All_sessions

type t = {
  transport : transport;
  processing : processing;
  sessions : neighbors_per_event;
}

let model_of cfg =
  let rel =
    match cfg.transport with Tcp -> Model.Reliable | Unreliable_transport -> Model.Unreliable
  in
  let nbr =
    match cfg.sessions with
    | Single_session -> Model.N_one
    | Some_sessions -> Model.N_multi
    | All_sessions -> Model.N_every
  in
  let msg =
    match cfg.processing with
    | Event_driven -> Model.M_one
    | Queue_drain -> Model.M_some
    | Route_refresh_poll -> Model.M_all
  in
  Model.make rel nbr msg

let describe cfg = Model.to_string (model_of cfg)

let presets =
  [
    ( "classic event-driven BGP",
      { transport = Tcp; processing = Event_driven; sessions = Single_session } );
    ( "BGP-4 specification queueing",
      { transport = Tcp; processing = Queue_drain; sessions = Some_sessions } );
    ( "route-refresh polling",
      { transport = Tcp; processing = Route_refresh_poll; sessions = All_sessions } );
    ( "datagram path-vector (ad-hoc networks)",
      { transport = Unreliable_transport; processing = Queue_drain; sessions = Some_sessions }
    );
    ( "per-session timer batching",
      { transport = Tcp; processing = Queue_drain; sessions = Single_session } );
  ]
