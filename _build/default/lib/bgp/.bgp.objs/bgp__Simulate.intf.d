lib/bgp/simulate.mli: Engine Spp Topology
