lib/bgp/config_map.mli: Engine
