lib/bgp/policy.mli: Engine Spp Topology
