lib/bgp/simulate.ml: Engine Executor List Model Policy Scheduler Spp State Step Trace
