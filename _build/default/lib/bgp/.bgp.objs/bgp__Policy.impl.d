lib/bgp/policy.ml: Fun Instance List Path Spp Topology
