lib/bgp/failure.mli: Engine Spp Topology
