lib/bgp/topology.mli: Format Spp
