lib/bgp/failure.ml: Assignment Engine Executor Instance List Path Policy Scheduler Spp State Step Surgery Topology Trace
