lib/bgp/topology.ml: Array Fmt Fun List Printf Random
