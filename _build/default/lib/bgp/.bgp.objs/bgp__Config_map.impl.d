lib/bgp/config_map.ml: Engine Model
