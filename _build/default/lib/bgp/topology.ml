type kind = Provider_customer | Peer_peer
type relationship = Customer | Peer | Provider

type t = {
  size : int;
  names : string array;
  links : (int * int * kind) list;
  rel : relationship option array array; (* rel.(u).(v): how u sees v *)
}

let size t = t.size
let names t = t.names
let name t v = t.names.(v)
let edges t = t.links

let relationship t ~of_ v = t.rel.(of_).(v)

let neighbors t v =
  List.filter (fun u -> u <> v && t.rel.(v).(u) <> None) (List.init t.size Fun.id)

(* Provider-customer links must form a DAG. *)
let check_acyclic size links =
  let down = Array.make size [] in
  List.iter
    (fun (p, c, k) -> if k = Provider_customer then down.(p) <- c :: down.(p))
    links;
  let color = Array.make size 0 in
  let rec visit v =
    if color.(v) = 1 then invalid_arg "Topology: provider-customer cycle";
    if color.(v) = 0 then begin
      color.(v) <- 1;
      List.iter visit down.(v);
      color.(v) <- 2
    end
  in
  for v = 0 to size - 1 do
    visit v
  done

let make ~names ~links =
  let size = Array.length names in
  let check v = if v < 0 || v >= size then invalid_arg "Topology: node out of range" in
  let rel = Array.make_matrix size size None in
  List.iter
    (fun (a, b, k) ->
      check a;
      check b;
      if a = b then invalid_arg "Topology: self-link";
      if rel.(a).(b) <> None then invalid_arg "Topology: duplicate link";
      match k with
      | Provider_customer ->
        rel.(a).(b) <- Some Customer;
        (* a sees b as its customer *)
        rel.(b).(a) <- Some Provider
      | Peer_peer ->
        rel.(a).(b) <- Some Peer;
        rel.(b).(a) <- Some Peer)
    links;
  check_acyclic size links;
  { size; names; links; rel }

type config = { tier1 : int; tier2 : int; stubs : int; seed : int }

let default_config = { tier1 = 2; tier2 = 3; stubs = 4; seed = 7 }

let generate cfg =
  if cfg.tier1 < 1 || cfg.tier2 < 1 || cfg.stubs < 1 then
    invalid_arg "Topology.generate: each tier needs at least one AS";
  let rng = Random.State.make [| cfg.seed; 0xbb9 |] in
  let n = cfg.tier1 + cfg.tier2 + cfg.stubs in
  let names =
    Array.init n (fun i ->
        if i < cfg.tier1 then Printf.sprintf "T%d" (i + 1)
        else if i < cfg.tier1 + cfg.tier2 then Printf.sprintf "M%d" (i - cfg.tier1 + 1)
        else Printf.sprintf "S%d" (i - cfg.tier1 - cfg.tier2 + 1))
  in
  let links = ref [] in
  (* Tier-1 full mesh of peering. *)
  for a = 0 to cfg.tier1 - 1 do
    for b = a + 1 to cfg.tier1 - 1 do
      links := (a, b, Peer_peer) :: !links
    done
  done;
  (* Each mid-tier AS buys transit from 1-2 tier-1s; occasional peering
     between mid-tier ASes. *)
  let mids = List.init cfg.tier2 (fun i -> cfg.tier1 + i) in
  List.iter
    (fun m ->
      let p1 = Random.State.int rng cfg.tier1 in
      links := (p1, m, Provider_customer) :: !links;
      if cfg.tier1 > 1 && Random.State.bool rng then begin
        let p2 = (p1 + 1 + Random.State.int rng (cfg.tier1 - 1)) mod cfg.tier1 in
        links := (p2, m, Provider_customer) :: !links
      end)
    mids;
  List.iteri
    (fun i m ->
      List.iteri
        (fun j m' ->
          if j > i && Random.State.int rng 3 = 0 then
            links := (m, m', Peer_peer) :: !links)
        mids)
    mids;
  (* Stubs are customers of 1-2 mid-tier (or occasionally tier-1) ASes. *)
  for s = cfg.tier1 + cfg.tier2 to n - 1 do
    let pick () =
      if Random.State.int rng 5 = 0 then Random.State.int rng cfg.tier1
      else cfg.tier1 + Random.State.int rng cfg.tier2
    in
    let p1 = pick () in
    links := (p1, s, Provider_customer) :: !links;
    if Random.State.bool rng then begin
      let p2 = pick () in
      if p2 <> p1 then links := (p2, s, Provider_customer) :: !links
    end
  done;
  make ~names ~links:!links

let pp ppf t =
  Fmt.pf ppf "@[<v>AS topology (%d ASes)@," t.size;
  List.iter
    (fun (a, b, k) ->
      match k with
      | Provider_customer -> Fmt.pf ppf "  %s -> %s (provider-customer)@," t.names.(a) t.names.(b)
      | Peer_peer -> Fmt.pf ppf "  %s -- %s (peering)@," t.names.(a) t.names.(b))
    t.links;
  Fmt.pf ppf "@]"
