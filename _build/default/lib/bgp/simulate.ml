open Engine

type result = {
  converged : bool;
  steps : int;
  messages : int;
  assignment : Spp.Assignment.t;
}

let run ?(max_steps = 50_000) ?(use_export_policy = true) topo ~dest ~model ~scheduler =
  let inst = Policy.compile topo ~dest in
  let export =
    if use_export_policy then Policy.export_policy topo else Step.export_all
  in
  let r = Executor.run ~export ~validate:model ~max_steps inst (scheduler inst model) in
  let trace = r.Executor.trace in
  let messages =
    List.fold_left
      (fun acc (s : Trace.step) -> acc + List.length s.Trace.outcome.Step.pushed)
      0 (Trace.steps trace)
  in
  {
    converged = r.Executor.stop = Executor.Quiescent;
    steps = Trace.length trace;
    messages;
    assignment = State.assignment inst (Trace.final trace);
  }

let converges_in_all_models ?max_steps topo ~dest =
  List.for_all
    (fun model ->
      let r = run ?max_steps topo ~dest ~model ~scheduler:Scheduler.round_robin in
      r.converged)
    Model.all
