(** Finite-prefix bookkeeping for the fairness condition (Def. 2.4). *)

type report = {
  unread_channels : Channel.id list;
      (** tracked channels never read in the prefix *)
  max_gap : (Channel.id * int) list;
      (** per channel, the longest stretch of steps without a read *)
  unresolved_drops : Channel.id list;
      (** channels whose last read containing a drop was not followed by a
          dropless read *)
}

val analyze : Spp.Instance.t -> Activation.t list -> report

val cycle_is_fair : Spp.Instance.t -> Activation.t list -> bool
(** Whether repeating the given entries forever yields a fair activation
    sequence: every tracked channel is read at least once per cycle, and any
    channel with a dropped read also has a dropless read with a positive
    message count in the cycle. *)
