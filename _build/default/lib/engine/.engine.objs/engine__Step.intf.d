lib/engine/step.mli: Activation Channel Spp State
