lib/engine/activation.ml: Channel Fmt Int List Set Spp
