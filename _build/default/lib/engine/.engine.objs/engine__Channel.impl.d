lib/engine/channel.ml: Fmt List Map Spp
