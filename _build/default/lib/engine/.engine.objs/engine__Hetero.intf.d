lib/engine/hetero.mli: Activation Model Scheduler Spp
