lib/engine/executor.ml: Activation Fmt Hashtbl List Model Scheduler Seq State Step Trace
