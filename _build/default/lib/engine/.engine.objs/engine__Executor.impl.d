lib/engine/executor.ml: Activation Fmt Hashtbl List Metrics Model Scheduler Seq State Step Trace
