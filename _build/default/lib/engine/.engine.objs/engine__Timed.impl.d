lib/engine/timed.ml: Activation Assignment Channel Instance List Model Path Set Spp State Step
