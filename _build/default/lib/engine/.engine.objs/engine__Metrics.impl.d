lib/engine/metrics.ml: Atomic Buffer Char Float Fmt Fun List Mutex Printf String Unix
