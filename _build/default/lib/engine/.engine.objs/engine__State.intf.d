lib/engine/state.mli: Channel Format Spp
