lib/engine/fairness.mli: Activation Channel Spp
