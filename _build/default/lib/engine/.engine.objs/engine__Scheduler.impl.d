lib/engine/scheduler.ml: Activation Array Channel Fmt Instance List Model Random Seq Spp
