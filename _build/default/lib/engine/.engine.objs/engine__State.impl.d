lib/engine/state.ml: Assignment Channel Fmt Hashtbl Instance Int List Map Path Spp
