lib/engine/stats.ml: Executor Fmt List Spp State Step Trace
