lib/engine/replay.ml: Activation Channel In_channel Instance List Out_channel Printf Result Spp String
