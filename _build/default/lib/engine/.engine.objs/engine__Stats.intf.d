lib/engine/stats.mli: Format Scheduler Spp Step
