lib/engine/replay.mli: Activation Spp
