lib/engine/trace.mli: Activation Format Spp State Step
