lib/engine/multi.mli: Activation Model Scheduler Spp
