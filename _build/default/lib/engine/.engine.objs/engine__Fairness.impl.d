lib/engine/fairness.ml: Activation Channel Hashtbl Instance List Option Spp
