lib/engine/trace.ml: Activation Fmt Instance List Path Printf Spp State Step String
