lib/engine/model.ml: Activation Channel Fmt List Spp String
