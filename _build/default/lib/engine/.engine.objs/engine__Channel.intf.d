lib/engine/channel.mli: Format Map Spp
