lib/engine/surgery.ml: Channel Instance List Spp State
