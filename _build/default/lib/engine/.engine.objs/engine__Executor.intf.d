lib/engine/executor.mli: Activation Format Metrics Model Scheduler Spp State Step Trace
