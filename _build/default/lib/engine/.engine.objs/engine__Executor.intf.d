lib/engine/executor.mli: Activation Format Model Scheduler Spp State Step Trace
