lib/engine/timed.mli: Channel Spp
