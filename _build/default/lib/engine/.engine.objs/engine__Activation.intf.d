lib/engine/activation.mli: Channel Format Set Spp
