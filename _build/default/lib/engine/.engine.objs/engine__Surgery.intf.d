lib/engine/surgery.mli: Spp State
