lib/engine/model.mli: Activation Channel Format Spp
