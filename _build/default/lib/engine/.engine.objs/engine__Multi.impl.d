lib/engine/multi.ml: Activation Fmt Instance List Model Scheduler Seq Spp
