lib/engine/step.ml: Activation Channel Fmt Instance List Path Spp State
