lib/engine/scheduler.mli: Activation Model Seq Spp
