lib/engine/hetero.ml: Activation Array Channel Instance List Model Printf Scheduler Seq Spp String
