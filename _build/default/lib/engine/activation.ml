module IntSet = Set.Make (Int)

type count = Finite of int | All
type read = { chan : Channel.id; count : count; drops : IntSet.t }
type t = { active : int list; reads : read list }

let entry ~active ~reads = { active = List.sort_uniq compare active; reads }

let read ?(drops = []) ?(count = All) chan =
  { chan; count; drops = IntSet.of_list drops }

let single v reads = { active = [ v ]; reads }

let poll_all inst v =
  (* Channels into the destination are irrelevant to every route choice and
     are not tracked (DESIGN.md); polling the destination reads nothing. *)
  if v = Spp.Instance.dest inst then single v []
  else
    let reads =
      List.map (fun u -> read (Channel.id ~src:u ~dst:v)) (Spp.Instance.neighbors inst v)
    in
    single v reads

type error =
  | Empty_active
  | Unknown_channel of Channel.id
  | Reader_not_active of Channel.id
  | Duplicate_channel of Channel.id
  | Negative_count of Channel.id
  | Bad_drops of Channel.id

let pp_error inst ppf err =
  let pp_c = Channel.pp_id inst in
  match err with
  | Empty_active -> Fmt.string ppf "no active node"
  | Unknown_channel c -> Fmt.pf ppf "channel %a is not in the graph" pp_c c
  | Reader_not_active c -> Fmt.pf ppf "receiver of %a is not active" pp_c c
  | Duplicate_channel c -> Fmt.pf ppf "channel %a read twice" pp_c c
  | Negative_count c -> Fmt.pf ppf "negative message count on %a" pp_c c
  | Bad_drops c -> Fmt.pf ppf "invalid drop set on %a" pp_c c

let well_formed inst t =
  let errs = ref [] in
  let add e = errs := e :: !errs in
  if t.active = [] then add Empty_active;
  let seen = ref [] in
  List.iter
    (fun r ->
      let c = r.chan in
      if not (Spp.Instance.are_adjacent inst c.Channel.src c.Channel.dst) then
        add (Unknown_channel c);
      if not (List.mem c.Channel.dst t.active) then add (Reader_not_active c);
      if List.exists (Channel.equal_id c) !seen then add (Duplicate_channel c);
      seen := c :: !seen;
      (match r.count with
      | Finite n when n < 0 -> add (Negative_count c)
      | Finite _ | All -> ());
      (match r.count with
      | Finite 0 -> if not (IntSet.is_empty r.drops) then add (Bad_drops c)
      | Finite n ->
        if IntSet.exists (fun i -> i < 1 || i > n) r.drops then add (Bad_drops c)
      | All -> if IntSet.exists (fun i -> i < 1) r.drops then add (Bad_drops c)))
    t.reads;
  List.rev !errs

let pp inst ppf t =
  let pp_read ppf r =
    let count =
      match r.count with All -> "all" | Finite n -> string_of_int n
    in
    Fmt.pf ppf "%a:%s%s" (Channel.pp_id inst) r.chan count
      (if IntSet.is_empty r.drops then ""
       else
         Fmt.str "\\{%a}" Fmt.(list ~sep:(any ", ") int) (IntSet.elements r.drops))
  in
  Fmt.pf ppf "({%a}, [%a])"
    Fmt.(list ~sep:(any ", ") string)
    (List.map (Spp.Instance.name inst) t.active)
    Fmt.(list ~sep:sp pp_read)
    t.reads
