open Spp

type report = {
  unread_channels : Channel.id list;
  max_gap : (Channel.id * int) list;
  unresolved_drops : Channel.id list;
}

let tracked inst =
  List.filter_map
    (fun (src, dst) ->
      if dst = Instance.dest inst then None else Some (Channel.id ~src ~dst))
    (Instance.channels inst)

let reads_of (entry : Activation.t) = entry.Activation.reads

let analyze inst entries =
  let chans = tracked inst in
  let last_read = Hashtbl.create 17 and gaps = Hashtbl.create 17 in
  let read_counts = Hashtbl.create 17 in
  let pending_drop = Hashtbl.create 17 in
  List.iteri
    (fun i entry ->
      List.iter
        (fun (r : Activation.read) ->
          let c = r.Activation.chan in
          let prev = match Hashtbl.find_opt last_read c with Some p -> p | None -> -1 in
          let gap = i - prev in
          let old = match Hashtbl.find_opt gaps c with Some g -> g | None -> 0 in
          if gap > old then Hashtbl.replace gaps c gap;
          Hashtbl.replace last_read c i;
          Hashtbl.replace read_counts c
            (1 + Option.value ~default:0 (Hashtbl.find_opt read_counts c));
          if not (Activation.IntSet.is_empty r.Activation.drops) then
            Hashtbl.replace pending_drop c true
          else if r.Activation.count <> Activation.Finite 0 then
            Hashtbl.replace pending_drop c false)
        (reads_of entry))
    entries;
  let n = List.length entries in
  {
    unread_channels = List.filter (fun c -> not (Hashtbl.mem last_read c)) chans;
    max_gap =
      List.map
        (fun c ->
          let g = match Hashtbl.find_opt gaps c with Some g -> g | None -> n in
          let tail =
            n - (match Hashtbl.find_opt last_read c with Some p -> p | None -> -1)
          in
          (c, max g tail))
        chans;
    unresolved_drops =
      List.filter
        (fun c -> Hashtbl.find_opt pending_drop c = Some true)
        chans;
  }

let cycle_is_fair inst entries =
  let r = analyze inst entries in
  r.unread_channels = []
  &&
  (* Within one cycle, every channel that drops must also have a dropless
     positive read (so that, cyclically, drops are always followed by
     non-dropped messages being processed). *)
  let dropping = Hashtbl.create 7 and clean = Hashtbl.create 7 in
  List.iter
    (fun entry ->
      List.iter
        (fun (rd : Activation.read) ->
          let c = rd.Activation.chan in
          if not (Activation.IntSet.is_empty rd.Activation.drops) then
            Hashtbl.replace dropping c true
          else if rd.Activation.count <> Activation.Finite 0 then
            Hashtbl.replace clean c true)
        (reads_of entry))
    entries;
  Hashtbl.fold (fun c _ ok -> ok && Hashtbl.mem clean c) dropping true
