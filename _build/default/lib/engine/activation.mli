(** Activation-sequence entries (Def. 2.2 of the paper).

    An entry is the quadruple (U, X, f, g): the set [active] of updating
    nodes, and for each channel in X a {!read} giving how many messages to
    process ([count], the function f) and which processed messages to drop
    ([drops], the function g; 1-based indices). *)

module IntSet : Set.S with type elt = int

type count = Finite of int | All
(** f(c): [All] is the paper's infinity. *)

type read = { chan : Channel.id; count : count; drops : IntSet.t }

type t = { active : int list; reads : read list }
(** [active] is sorted and duplicate-free (a set); the order of [reads] is
    irrelevant to the semantics since each channel appears at most once. *)

val entry : active:Spp.Path.node list -> reads:read list -> t
val read : ?drops:int list -> ?count:count -> Channel.id -> read
(** [count] defaults to [All], [drops] to none. *)

val single : Spp.Path.node -> read list -> t
(** An entry activating exactly one node. *)

val poll_all : Spp.Instance.t -> Spp.Path.node -> t
(** The REA-style entry: the node reads all messages from all its channels. *)

type error =
  | Empty_active
  | Unknown_channel of Channel.id
  | Reader_not_active of Channel.id
  | Duplicate_channel of Channel.id
  | Negative_count of Channel.id
  | Bad_drops of Channel.id  (** drops outside 1..f(c), or drops with f=0 *)

val pp_error : Spp.Instance.t -> Format.formatter -> error -> unit

val well_formed : Spp.Instance.t -> t -> error list
(** Checks the Def. 2.2 side conditions; the empty list means well-formed. *)

val pp : Spp.Instance.t -> Format.formatter -> t -> unit
