(** A discrete-event, timed wrapper around the step semantics: per-node
    activation timers (MRAI-style batching) and per-link propagation
    delays.

    This grounds Sec. 4's discussion of BGP wait times: every timed run
    induces an ordinary activation sequence (batch mode yields wMS-shaped
    entries, event mode w1O-shaped ones), so all taxonomy results apply,
    while wall-clock convergence time and message counts become
    measurable. *)

type mode =
  | Batch  (** at each timer tick, read everything that has arrived *)
  | Event_driven  (** process each message immediately upon arrival *)

type config = {
  mode : mode;
  mrai : Spp.Path.node -> int;  (** timer interval (ticks) in batch mode *)
  link_delay : Channel.id -> int;  (** propagation delay per channel *)
  horizon : int;  (** simulation time limit *)
}

val default : config
(** Batch mode, interval 1, unit delays, horizon 100_000. *)

type result = {
  converged : bool;
  finish_time : int;  (** time at which the network became quiescent *)
  last_change : int;  (** time of the last route-assignment change *)
  messages : int;  (** total announcements sent *)
  activations : int;
  assignment : Spp.Assignment.t;
}

val run : ?config:config -> Spp.Instance.t -> result

val mrai_sweep :
  ?intervals:int list ->
  ?link_delay:(Channel.id -> int) ->
  Spp.Instance.t ->
  (int * result) list
(** Batch-mode runs with a uniform MRAI interval per entry of
    [intervals] (default 1, 2, 4, 8, 16).  With heterogeneous
    [link_delay]s, small intervals act on partial information (more
    transient announcements) while large ones batch it (fewer messages,
    later finish) — the trade-off discussed in Sec. 4. *)

val spread_delays : Spp.Instance.t -> Channel.id -> int
(** A deterministic heterogeneous delay assignment (1..6 ticks). *)
