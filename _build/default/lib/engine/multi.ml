open Spp

type regime = Synchronous | Unrestricted

let validates inst regime model (entry : Activation.t) =
  Model.validates_multi inst model entry
  &&
  match regime with
  | Unrestricted -> entry.Activation.active <> []
  | Synchronous -> entry.Activation.active = Instance.nodes inst

let all_nodes_entry inst ~count =
  let reads =
    List.concat_map
      (fun v ->
        List.map (fun c -> Activation.read ~count c) (Model.required_channels inst v))
      (Instance.nodes inst)
  in
  Activation.entry ~active:(Instance.nodes inst) ~reads

let synchronous inst model =
  let count =
    match model.Model.msg with
    | Model.M_one -> Activation.Finite 1
    | Model.M_some | Model.M_forced | Model.M_all -> Activation.All
  in
  let entry = all_nodes_entry inst ~count in
  {
    Scheduler.entries = Seq.forever (fun () -> entry);
    period = Some 1;
    description = Fmt.str "synchronous/%a" Model.pp model;
  }

let synchronous_polling inst =
  synchronous inst (Model.make Model.Reliable Model.N_every Model.M_all)
