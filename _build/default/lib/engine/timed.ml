open Spp

type mode = Batch | Event_driven

type config = {
  mode : mode;
  mrai : Path.node -> int;
  link_delay : Channel.id -> int;
  horizon : int;
}

let default =
  { mode = Batch; mrai = (fun _ -> 1); link_delay = (fun _ -> 1); horizon = 100_000 }

type result = {
  converged : bool;
  finish_time : int;
  last_change : int;
  messages : int;
  activations : int;
  assignment : Assignment.t;
}

(* Arrival times of the queued messages, oldest first, kept in lockstep
   with the engine's channel queues. *)
type timed_state = { state : State.t; arrivals : int list Channel.Map.t }

let arrivals_of ts c =
  match Channel.Map.find_opt c ts.arrivals with Some l -> l | None -> []

let step_timed cfg inst ts ~now entry =
  let outcome = Step.apply inst ts.state entry in
  (* pops *)
  let arrivals =
    List.fold_left
      (fun arr (c, k) ->
        let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
        Channel.Map.add c (drop k (arrivals_of { ts with arrivals = arr } c)) arr)
      ts.arrivals outcome.Step.processed
  in
  (* pushes, stamped with propagation delay *)
  let arrivals =
    List.fold_left
      (fun arr (c, _) ->
        let prev = match Channel.Map.find_opt c arr with Some l -> l | None -> [] in
        Channel.Map.add c (prev @ [ now + cfg.link_delay c ]) arr)
      arrivals outcome.Step.pushed
  in
  ({ state = outcome.Step.state; arrivals }, outcome)

let arrived ts c ~now =
  List.length (List.filter (fun t -> t <= now) (arrivals_of ts c))

let batch_entry inst ts ~now v =
  let reads =
    List.filter_map
      (fun c ->
        let k = arrived ts c ~now in
        if k = 0 then None else Some (Activation.read ~count:(Activation.Finite k) c))
      (Model.required_channels inst v)
  in
  Activation.single v reads

let run ?(config = default) inst =
  let messages = ref 0 and activations = ref 0 and last_change = ref 0 in
  let pi_changed outcome = outcome.Step.announcements <> [] in
  let quiescent ts = State.is_quiescent inst ts.state in
  let finish = ref None in
  let ts = ref { state = State.initial inst; arrivals = Channel.Map.empty } in
  let record outcome ~now =
    incr activations;
    messages := !messages + List.length outcome.Step.pushed;
    if pi_changed outcome then last_change := now
  in
  (match config.mode with
  | Batch ->
    let now = ref 0 in
    while !finish = None && !now <= config.horizon do
      List.iter
        (fun v ->
          let interval = max 1 (config.mrai v) in
          if !now mod interval = 0 then begin
            let entry = batch_entry inst !ts ~now:!now v in
            let ts', outcome = step_timed config inst !ts ~now:!now entry in
            ts := ts';
            record outcome ~now:!now
          end)
        (Instance.nodes inst);
      if quiescent !ts then finish := Some !now;
      incr now
    done
  | Event_driven ->
    (* Event queue: message arrivals trigger a single read; the initial
       event activates the destination. *)
    let module PQ = Set.Make (struct
      type t = int * int * Channel.id option (* time, seq, channel *)

      let compare = compare
    end) in
    let seq = ref 0 in
    let queue = ref PQ.empty in
    let push_event time chan =
      incr seq;
      queue := PQ.add (time, !seq, chan) !queue
    in
    push_event 0 None;
    while !finish = None && not (PQ.is_empty !queue) do
      let ((now, _, chan) as ev) = PQ.min_elt !queue in
      queue := PQ.remove ev !queue;
      if now > config.horizon then finish := Some now
      else begin
        let entry =
          match chan with
          | None -> Activation.single (Instance.dest inst) []
          | Some c ->
            Activation.single c.Channel.dst
              [ Activation.read ~count:(Activation.Finite 1) c ]
        in
        let ts', outcome = step_timed config inst !ts ~now entry in
        ts := ts';
        record outcome ~now;
        List.iter
          (fun (c, _) -> push_event (now + config.link_delay c) (Some c))
          outcome.Step.pushed;
        if PQ.is_empty !queue && quiescent !ts then finish := Some now
      end
    done;
    if !finish = None && quiescent !ts then finish := Some 0);
  let converged = quiescent !ts in
  {
    converged;
    finish_time = (match !finish with Some t -> t | None -> config.horizon);
    last_change = !last_change;
    messages = !messages;
    activations = !activations;
    assignment = State.assignment inst !ts.state;
  }

let spread_delays _inst (c : Channel.id) =
  1 + ((c.Channel.src * 7) + (c.Channel.dst * 13)) mod 6

let mrai_sweep ?(intervals = [ 1; 2; 4; 8; 16 ]) ?link_delay inst =
  let link_delay =
    match link_delay with Some f -> f | None -> default.link_delay
  in
  List.map
    (fun i -> (i, run ~config:{ default with mrai = (fun _ -> i); link_delay } inst))
    intervals
