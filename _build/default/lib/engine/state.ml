module IMap = Map.Make (Int)
open Spp

(* Each component binding is hashed with a distinct tag and XOR-folded into
   a running digest, so single-binding updates adjust the digest in O(log n)
   instead of rehashing four full [bindings] lists per lookup.  XOR is its
   own inverse: removing a binding re-XORs the same value out. *)
let h_pi v p = Hashtbl.hash (0x50, v, (p : Path.t))
let h_rho (c : Channel.id) p = Hashtbl.hash (0x51, c, (p : Path.t))
let h_ann v p = Hashtbl.hash (0x52, v, (p : Path.t))
let h_chan (c : Channel.id) msgs = Hashtbl.hash (0x53, c, (msgs : Path.t list))

type t = {
  pi : Path.t IMap.t; (* absent = epsilon *)
  rho : Path.t Channel.Map.t; (* absent = epsilon *)
  ann : Path.t IMap.t; (* absent = epsilon *)
  chans : Channel.t;
  dig_core : int; (* XOR of binding hashes of pi, rho, ann *)
  dig_chans : int; (* XOR of binding hashes of chans *)
}

let digest t = (t.dig_core lxor t.dig_chans) land max_int
let hash = digest

let chans_digest chans =
  Channel.Map.fold (fun c msgs acc -> acc lxor h_chan c msgs) chans 0

let initial inst =
  let d = Instance.dest inst in
  let p0 = Path.of_nodes [ d ] in
  {
    pi = IMap.singleton d p0;
    rho = Channel.Map.empty;
    ann = IMap.empty;
    chans = Channel.empty;
    dig_core = h_pi d p0;
    dig_chans = 0;
  }

let find_i k m = match IMap.find_opt k m with Some p -> p | None -> Path.epsilon

let pi t v = find_i v t.pi
let announced t v = find_i v t.ann

let rho t c =
  match Channel.Map.find_opt c t.rho with Some p -> p | None -> Path.epsilon

let channels t = t.chans
let rho_bindings t = Channel.Map.bindings t.rho

let assignment inst t = Assignment.make inst (fun v -> pi t v)

(* The digest delta of replacing a binding: XOR out the old hash (if the key
   was bound) and XOR in the new one (unless the new value is epsilon, which
   is not stored). *)
let delta_i h k p old =
  (match old with Some q -> h k q | None -> 0)
  lxor (if Path.is_epsilon p then 0 else h k p)

let with_pi t v p =
  let dig_core = t.dig_core lxor delta_i h_pi v p (IMap.find_opt v t.pi) in
  let pi = if Path.is_epsilon p then IMap.remove v t.pi else IMap.add v p t.pi in
  { t with pi; dig_core }

let with_rho t c p =
  let dig_core = t.dig_core lxor delta_i h_rho c p (Channel.Map.find_opt c t.rho) in
  let rho =
    if Path.is_epsilon p then Channel.Map.remove c t.rho else Channel.Map.add c p t.rho
  in
  { t with rho; dig_core }

let with_announced t v p =
  let dig_core = t.dig_core lxor delta_i h_ann v p (IMap.find_opt v t.ann) in
  let ann = if Path.is_epsilon p then IMap.remove v t.ann else IMap.add v p t.ann in
  { t with ann; dig_core }

let with_channels t chans =
  if t.chans == chans then t else { t with chans; dig_chans = chans_digest chans }

let best_choice inst t v =
  if v = Instance.dest inst then Path.of_nodes [ v ]
  else
    let candidates =
      List.filter_map
        (fun u ->
          let r = rho t (Channel.id ~src:u ~dst:v) in
          if Path.is_epsilon r then None
          else if Path.contains v r then None
          else Some (Path.extend v r))
        (Instance.neighbors inst v)
    in
    Instance.best inst v candidates

let is_quiescent inst t =
  Channel.Map.is_empty t.chans
  && List.for_all
       (fun v ->
         let p = best_choice inst t v in
         Path.equal p (pi t v) && Path.equal p (announced t v))
       (Instance.nodes inst)

let equal (a : t) b =
  a.dig_core = b.dig_core
  && a.dig_chans = b.dig_chans
  && IMap.equal Path.equal a.pi b.pi
  && Channel.Map.equal Path.equal a.rho b.rho
  && IMap.equal Path.equal a.ann b.ann
  && Channel.Map.equal (List.equal Path.equal) a.chans b.chans

let compare (a : t) b =
  let c = IMap.compare Path.compare a.pi b.pi in
  if c <> 0 then c
  else
    let c = Channel.Map.compare Path.compare a.rho b.rho in
    if c <> 0 then c
    else
      let c = IMap.compare Path.compare a.ann b.ann in
      if c <> 0 then c
      else Channel.Map.compare (List.compare Path.compare) a.chans b.chans

let pp inst ppf t =
  let pp_path = Instance.pp_path inst in
  Fmt.pf ppf "@[<v>pi: %a@,rho: %a@,queues: %a@]"
    Fmt.(
      list ~sep:(any ", ") (fun ppf v ->
          Fmt.pf ppf "%s:%a" (Instance.name inst v) pp_path (pi t v)))
    (Instance.nodes inst)
    Fmt.(
      list ~sep:(any ", ") (fun ppf (c, p) ->
          Fmt.pf ppf "%a=%a" (Channel.pp_id inst) c pp_path p))
    (Channel.Map.bindings t.rho)
    Fmt.(
      list ~sep:(any ", ") (fun ppf (c, msgs) ->
          Fmt.pf ppf "%a=[%a]" (Channel.pp_id inst) c (list ~sep:semi pp_path) msgs))
    (Channel.bindings t.chans)
