module IMap = Map.Make (Int)
open Spp

type t = {
  pi : Path.t IMap.t; (* absent = epsilon *)
  rho : Path.t Channel.Map.t; (* absent = epsilon *)
  ann : Path.t IMap.t; (* absent = epsilon *)
  chans : Channel.t;
}

let normalized_add_i k p m = if Path.is_epsilon p then IMap.remove k m else IMap.add k p m

let normalized_add_c k p m =
  if Path.is_epsilon p then Channel.Map.remove k m else Channel.Map.add k p m

let initial inst =
  {
    pi = IMap.singleton (Instance.dest inst) (Path.of_nodes [ Instance.dest inst ]);
    rho = Channel.Map.empty;
    ann = IMap.empty;
    chans = Channel.empty;
  }

let find_i k m = match IMap.find_opt k m with Some p -> p | None -> Path.epsilon

let pi t v = find_i v t.pi
let announced t v = find_i v t.ann

let rho t c =
  match Channel.Map.find_opt c t.rho with Some p -> p | None -> Path.epsilon

let channels t = t.chans
let rho_bindings t = Channel.Map.bindings t.rho

let assignment inst t = Assignment.make inst (fun v -> pi t v)

let with_pi t v p = { t with pi = normalized_add_i v p t.pi }
let with_rho t c p = { t with rho = normalized_add_c c p t.rho }
let with_announced t v p = { t with ann = normalized_add_i v p t.ann }
let with_channels t chans = { t with chans }

let best_choice inst t v =
  if v = Instance.dest inst then Path.of_nodes [ v ]
  else
    let candidates =
      List.filter_map
        (fun u ->
          let r = rho t (Channel.id ~src:u ~dst:v) in
          if Path.is_epsilon r then None
          else if Path.contains v r then None
          else Some (Path.extend v r))
        (Instance.neighbors inst v)
    in
    Instance.best inst v candidates

let is_quiescent inst t =
  Channel.Map.is_empty t.chans
  && List.for_all
       (fun v ->
         let p = best_choice inst t v in
         Path.equal p (pi t v) && Path.equal p (announced t v))
       (Instance.nodes inst)

let equal (a : t) b =
  IMap.equal Path.equal a.pi b.pi
  && Channel.Map.equal Path.equal a.rho b.rho
  && IMap.equal Path.equal a.ann b.ann
  && Channel.Map.equal (List.equal Path.equal) a.chans b.chans

let compare (a : t) b =
  let c = IMap.compare Path.compare a.pi b.pi in
  if c <> 0 then c
  else
    let c = Channel.Map.compare Path.compare a.rho b.rho in
    if c <> 0 then c
    else
      let c = IMap.compare Path.compare a.ann b.ann in
      if c <> 0 then c
      else Channel.Map.compare (List.compare Path.compare) a.chans b.chans

let hash t =
  Hashtbl.hash
    ( IMap.bindings t.pi,
      Channel.Map.bindings t.rho,
      IMap.bindings t.ann,
      Channel.Map.bindings t.chans )

let pp inst ppf t =
  let pp_path = Instance.pp_path inst in
  Fmt.pf ppf "@[<v>pi: %a@,rho: %a@,queues: %a@]"
    Fmt.(
      list ~sep:(any ", ") (fun ppf v ->
          Fmt.pf ppf "%s:%a" (Instance.name inst v) pp_path (pi t v)))
    (Instance.nodes inst)
    Fmt.(
      list ~sep:(any ", ") (fun ppf (c, p) ->
          Fmt.pf ppf "%a=%a" (Channel.pp_id inst) c pp_path p))
    (Channel.Map.bindings t.rho)
    Fmt.(
      list ~sep:(any ", ") (fun ppf (c, msgs) ->
          Fmt.pf ppf "%a=[%a]" (Channel.pp_id inst) c (list ~sep:semi pp_path) msgs))
    (Channel.bindings t.chans)
