(** State surgery across topology or policy changes.

    A network event (link failure, mobility, a policy update) yields a new
    instance over the same node ids; the running state carries over: nodes
    keep their current (possibly stale) routes and announcements, channels
    that survive keep their knowledge and in-flight messages, channels that
    disappeared are discarded.  This is the semantics of a BGP session
    reset or of a wireless link moving out of range, generalized from
    {!Bgp.Failure} to arbitrary instances. *)

val transplant :
  old_instance:Spp.Instance.t ->
  new_instance:Spp.Instance.t ->
  State.t ->
  State.t
(** Both instances must have the same node count; node ids are preserved.
    Knowledge and queues of channels absent from the new instance are
    dropped. *)
