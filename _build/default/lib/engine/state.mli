(** Network state (Def. 2.1): path assignments π, known routes ρ, and
    channel contents, plus the last-announced route of each node (the
    interpretation of step 4 of Def. 2.3 described in DESIGN.md).

    Values are immutable and normalized — epsilon routes and empty channels
    are never stored — so structural equality and hashing are semantic. *)

type t

val initial : Spp.Instance.t -> t
(** π_d(0) = d, everything else epsilon, all channels empty.  Note that the
    destination has not yet {e announced} its path; its first activation
    injects the initial announcements (Ex. A.1). *)

val pi : t -> Spp.Path.node -> Spp.Path.t
val rho : t -> Channel.id -> Spp.Path.t
val announced : t -> Spp.Path.node -> Spp.Path.t
val channels : t -> Channel.t

val rho_bindings : t -> (Channel.id * Spp.Path.t) list
(** All non-epsilon known routes. *)

val assignment : Spp.Instance.t -> t -> Spp.Assignment.t
(** The π component as an assignment. *)

val with_pi : t -> Spp.Path.node -> Spp.Path.t -> t
val with_rho : t -> Channel.id -> Spp.Path.t -> t
val with_announced : t -> Spp.Path.node -> Spp.Path.t -> t
val with_channels : t -> Channel.t -> t

val best_choice : Spp.Instance.t -> t -> Spp.Path.node -> Spp.Path.t
(** The route the node would choose right now (step 3 of Def. 2.3): the most
    preferred permitted extension of its known routes ρ; the trivial path at
    the destination. *)

val is_quiescent : Spp.Instance.t -> t -> bool
(** All channels are empty and every node's chosen route equals its
    announced route; no activation can change any component from such a
    state, so the execution has converged. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val digest : t -> int
(** Constant-time content digest, maintained incrementally by the [with_*]
    updates (each rebinding XORs the affected binding hash in and out).
    Equal states have equal digests; collisions are possible, so use
    {!equal} to confirm. *)

val hash : t -> int
(** Alias of {!digest}, kept for [Hashtbl.Make] functors. *)

val pp : Spp.Instance.t -> Format.formatter -> t -> unit
