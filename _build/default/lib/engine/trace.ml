open Spp

type step = { index : int; entry : Activation.t; outcome : Step.outcome }

type t = { inst : Instance.t; init : State.t; steps : step list }

let instance t = t.inst
let initial t = t.init
let steps t = t.steps
let length t = List.length t.steps

let final t =
  match List.rev t.steps with
  | [] -> t.init
  | last :: _ -> last.outcome.Step.state

let make inst init steps = { inst; init; steps }

let assignments ?(include_initial = false) t =
  let rest = List.map (fun s -> State.assignment t.inst s.outcome.Step.state) t.steps in
  if include_initial then State.assignment t.inst t.init :: rest else rest

let active_rows t =
  List.concat_map
    (fun s ->
      List.map
        (fun v -> (v, State.pi s.outcome.Step.state v))
        s.entry.Activation.active)
    t.steps

let row_strings t =
  let names = Instance.names t.inst in
  List.map
    (fun (v, p) -> (Instance.name t.inst v, Path.to_string ~names p))
    (active_rows t)

let paper_table t =
  let rows = row_strings t in
  let cells = List.mapi (fun i (u, p) -> (string_of_int (i + 1), u, p)) rows in
  let width (a, b, c) = max (String.length a) (max (String.length b) (String.length c)) in
  let pad w s = s ^ String.make (w - String.length s) ' ' in
  let line f =
    String.concat "  " (List.map (fun cell -> pad (width cell) (f cell)) cells)
  in
  Printf.sprintf "t            =  %s\nU(t)         =  %s\npi_U(t)(t)   =  %s"
    (line (fun (a, _, _) -> a))
    (line (fun (_, b, _) -> b))
    (line (fun (_, _, c) -> c))

let pp ppf t = Fmt.string ppf (paper_table t)
