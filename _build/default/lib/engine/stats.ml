type sample = { converged : bool; stale : bool; steps : int; messages : int }

type summary = {
  runs : int;
  all_converged : bool;
  stale_runs : int;
  mean_steps : float;
  max_steps : int;
  mean_messages : float;
  max_messages : int;
}

let measure ?max_steps ?export inst sched =
  let r = Executor.run ?export ?max_steps inst sched in
  let trace = r.Executor.trace in
  let messages =
    List.fold_left
      (fun acc (s : Trace.step) -> acc + List.length s.Trace.outcome.Step.pushed)
      0 (Trace.steps trace)
  in
  let converged = r.Executor.stop = Executor.Quiescent in
  let stale =
    converged
    && not (Spp.Assignment.is_solution inst (State.assignment inst (Trace.final trace)))
  in
  { converged; stale; steps = Trace.length trace; messages }

let across_seeds ?max_steps ?export inst ~scheduler ~seeds =
  let samples = List.map (fun seed -> measure ?max_steps ?export inst (scheduler ~seed)) seeds in
  let n = List.length samples in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 samples in
  let maxi f = List.fold_left (fun acc s -> max acc (f s)) 0 samples in
  {
    runs = n;
    all_converged = List.for_all (fun s -> s.converged) samples;
    stale_runs = List.length (List.filter (fun s -> s.stale) samples);
    mean_steps = float_of_int (sum (fun s -> s.steps)) /. float_of_int (max n 1);
    max_steps = maxi (fun s -> s.steps);
    mean_messages = float_of_int (sum (fun s -> s.messages)) /. float_of_int (max n 1);
    max_messages = maxi (fun s -> s.messages);
  }

let pp_summary ppf s =
  Fmt.pf ppf "%d runs, %s%s; steps mean %.1f max %d; messages mean %.1f max %d" s.runs
    (if s.all_converged then "all converged" else "NOT all converged")
    (if s.stale_runs > 0 then Fmt.str " (%d stale)" s.stale_runs else "")
    s.mean_steps s.max_steps s.mean_messages s.max_messages
