(** Convergence-cost statistics across schedules: the measurement harness
    behind the bench's ablation tables. *)

type sample = {
  converged : bool;
  stale : bool;
      (** quiescent but not at a stable solution: only possible when
          messages were dropped in a way the fairness condition (Def. 2.4)
          rules out in the limit *)
  steps : int;
  messages : int;
}

type summary = {
  runs : int;
  all_converged : bool;
  stale_runs : int;
  mean_steps : float;
  max_steps : int;
  mean_messages : float;
  max_messages : int;
}

val measure :
  ?max_steps:int ->
  ?export:Step.export ->
  Spp.Instance.t ->
  Scheduler.t ->
  sample
(** One run: steps until quiescence and route announcements written. *)

val across_seeds :
  ?max_steps:int ->
  ?export:Step.export ->
  Spp.Instance.t ->
  scheduler:(seed:int -> Scheduler.t) ->
  seeds:int list ->
  summary

val pp_summary : Format.formatter -> summary -> unit
