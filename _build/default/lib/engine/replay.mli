(** Textual serialization of activation sequences, so schedules can be
    saved, shared, and replayed from the command line.

    Format: one entry per line,

    {v
    x <- y:1 d:all
    d <-
    x y <- y:all\{1,2} x:all        # multi-node entry with drops
    v}

    i.e. the active nodes, an arrow, and one [source:count] read per
    channel, where [count] is a number or [all], optionally followed by a
    drop set [\{i,j}].  '#' starts a comment. *)

val print_entry : Spp.Instance.t -> Activation.t -> string
val parse_entry : Spp.Instance.t -> string -> (Activation.t option, string) result
(** [Ok None] for blank/comment lines. *)

val print : Spp.Instance.t -> Activation.t list -> string
val parse : Spp.Instance.t -> string -> (Activation.t list, string) result
val save : Spp.Instance.t -> path:string -> Activation.t list -> unit
val load : Spp.Instance.t -> path:string -> (Activation.t list, string) result
