open Spp

type t = {
  entries : Activation.t Seq.t;
  period : int option;
  description : string;
}

let max_count (m : Model.t) =
  match m.Model.msg with
  | Model.M_one -> Activation.Finite 1
  | Model.M_some | Model.M_forced | Model.M_all -> Activation.All

let in_channels inst v =
  List.map (fun u -> Channel.id ~src:u ~dst:v) (Instance.neighbors inst v)

let round_robin_cycle inst (m : Model.t) =
  List.concat_map
    (fun v ->
      let count = max_count m in
      match m.Model.nbr with
      | Model.N_one -> (
        (* One entry per (node, channel); a node without channels (the
           destination under the untracked-inbox convention, or a node
           disconnected by a failure) still activates, with no reads, so
           that it keeps re-evaluating its route. *)
        match in_channels inst v with
        | [] -> [ Activation.single v [] ]
        | chans -> List.map (fun c -> Activation.single v [ Activation.read ~count c ]) chans)
      | Model.N_multi | Model.N_every ->
        let chans = Model.required_channels inst v in
        [ Activation.single v (List.map (fun c -> Activation.read ~count c) chans) ])
    (Instance.nodes inst)

let forever (cycle : Activation.t list) : Activation.t Seq.t =
  if cycle = [] then
    invalid_arg "Scheduler.forever: empty cycle (nothing to repeat)";
  let arr = Array.of_list cycle in
  let n = Array.length arr in
  Seq.unfold (fun i -> Some (arr.(i mod n), i + 1)) 0

let round_robin inst m =
  let cycle = round_robin_cycle inst m in
  {
    entries = forever cycle;
    period = Some (List.length cycle);
    description = Fmt.str "round-robin/%a" Model.pp m;
  }

(* Randomized fair scheduler.  Tracked channels (receivers other than the
   destination) carry an age: steps since last read.  When some age exceeds
   [age_limit] the oldest channel is read by force.  Under unreliable
   models, processed messages are dropped with probability ~1/4 except on
   forced activations, which never drop — so every dropped message on a
   channel is followed by a later undropped read of that channel. *)
let random inst (m : Model.t) ~seed =
  let rng0 = Random.State.make [| seed; 0x5eed |] in
  let tracked =
    List.filter (fun (c : Channel.id) -> c.dst <> Instance.dest inst) (Instance.channels inst |> List.map (fun (src, dst) -> Channel.id ~src ~dst))
  in
  let age_limit = 4 * List.length tracked in
  let nodes = Array.of_list (Instance.nodes inst) in
  let pick_count rng forced_len =
    match m.Model.msg with
    | Model.M_one -> Activation.Finite 1
    | Model.M_all -> Activation.All
    | Model.M_forced ->
      if Random.State.bool rng then Activation.All
      else Activation.Finite (1 + Random.State.int rng 3)
    | Model.M_some ->
      (match Random.State.int rng 4 with
      | 0 -> Activation.All
      | 1 when not forced_len -> Activation.Finite 0
      | n -> Activation.Finite n)
  in
  (* Drops are only generated on interior indices of a finite batch (the
     last processed message is always kept), so every dropped message is
     followed by a non-dropped one within the same read: the resulting
     schedule satisfies Def. 2.4's drop condition no matter what the
     channels contain.  Dropping a possibly-final message could strand the
     execution in a stale dead end that fairness excludes. *)
  let pick_drops rng ~forced count =
    if m.Model.rel = Model.Reliable || forced then Activation.IntSet.empty
    else
      match count with
      | Activation.All | Activation.Finite 0 | Activation.Finite 1 ->
        Activation.IntSet.empty
      | Activation.Finite n ->
        let rec collect acc j =
          if j > n - 1 then acc
          else
            collect
              (if Random.State.int rng 4 = 0 then Activation.IntSet.add j acc else acc)
              (j + 1)
        in
        collect Activation.IntSet.empty 1
  in
  let entry_for rng v ~must_read =
    (* Channels into the destination are untracked no-ops; under the M and E
       dimensions the destination simply reads nothing. *)
    let chans = Model.required_channels inst v in
    let chosen =
      match m.Model.nbr with
      | Model.N_every -> chans
      | Model.N_one ->
        (* N_one needs exactly one read when the node has channels; a node
           without any still activates with no reads. *)
        (match must_read with
        | Some c -> [ c ]
        | None ->
          (match (if chans = [] then in_channels inst v else chans) with
          | [] -> []
          | l -> [ List.nth l (Random.State.int rng (List.length l)) ]))
      | Model.N_multi ->
        let picked = List.filter (fun _ -> Random.State.bool rng) chans in
        (match must_read with
        | Some c when not (List.exists (Channel.equal_id c) picked) -> c :: picked
        | _ -> picked)
    in
    let reads =
      List.map
        (fun c ->
          let forced =
            match must_read with Some f -> Channel.equal_id f c | None -> false
          in
          let count = pick_count rng forced in
          let count =
            (* A forced read must actually consume: avoid Finite 0. *)
            match (count, forced) with
            | Activation.Finite 0, true -> Activation.All
            | c, _ -> c
          in
          { Activation.chan = c; count; drops = pick_drops rng ~forced count })
        chosen
    in
    Activation.single v reads
  in
  let step (rng, ages) =
    let overdue =
      List.filter (fun (c : Channel.id) ->
          match Channel.Map.find_opt c ages with
          | Some a -> a >= age_limit
          | None -> false)
        tracked
    in
    let must_read, v =
      match overdue with
      | c :: _ -> (Some c, c.Channel.dst)
      | [] -> (None, nodes.(Random.State.int rng (Array.length nodes)))
    in
    let entry = entry_for rng v ~must_read in
    let read_set = List.map (fun (r : Activation.read) -> r.Activation.chan) entry.Activation.reads in
    let ages =
      List.fold_left
        (fun m c ->
          let read = List.exists (Channel.equal_id c) read_set in
          let prev = match Channel.Map.find_opt c m with Some a -> a | None -> 0 in
          Channel.Map.add c (if read then 0 else prev + 1) m)
        Channel.Map.empty tracked
    in
    Some (entry, (rng, ages))
  in
  {
    entries = Seq.unfold step (rng0, Channel.Map.empty);
    period = None;
    description = Fmt.str "random/%a/seed=%d" Model.pp m seed;
  }

let polling_nodes inst nodes =
  {
    entries = List.to_seq (List.map (Activation.poll_all inst) nodes);
    period = None;
    description = "scripted-polling";
  }

let of_entries ?period entries =
  { entries = List.to_seq entries; period; description = "scripted" }

let cycle entries =
  {
    entries = forever entries;
    period = Some (List.length entries);
    description = "scripted-cycle";
  }

let prefixed pre cyc =
  {
    entries = Seq.append (List.to_seq pre) (forever cyc);
    period = Some (List.length cyc);
    description = "scripted-prefix+cycle";
  }

let prefix n t = List.of_seq (Seq.take n t.entries)
