(** Running activation sequences against an instance. *)

type stop =
  | Quiescent
      (** all channels empty and every node's choice equals its announced
          route: the execution has converged (Def. 2.5) *)
  | Cycle of { first : int; period : int }
      (** the full network state repeated at the same schedule phase: under
          a cyclic schedule the execution provably oscillates forever *)
  | Exhausted  (** ran out of entries or reached [max_steps] *)

val pp_stop : Format.formatter -> stop -> unit

type run = { trace : Trace.t; stop : stop }

val run :
  ?export:Step.export ->
  ?validate:Model.t ->
  ?metrics:Metrics.t ->
  ?max_steps:int ->
  Spp.Instance.t ->
  Scheduler.t ->
  run
(** Applies the scheduler's entries until quiescence, a state/phase cycle
    (only detected when the scheduler declares a period), exhaustion of the
    sequence, or [max_steps] (default 10_000).  With [validate], every entry
    is checked against the model first and [Invalid_argument] is raised on a
    violation.  With [metrics], steps and pushed messages are counted and
    the wall time is recorded as an "executor" phase. *)

val run_from :
  ?export:Step.export ->
  ?validate:Model.t ->
  ?metrics:Metrics.t ->
  ?max_steps:int ->
  state:State.t ->
  Spp.Instance.t ->
  Scheduler.t ->
  run
(** Like {!run} but starting from an arbitrary state (e.g. a converged
    network after a topology or policy event). *)

val run_entries :
  ?export:Step.export ->
  ?validate:Model.t ->
  ?metrics:Metrics.t ->
  Spp.Instance.t ->
  Activation.t list ->
  Trace.t
(** Runs a finite scripted sequence to its end (no early stop). *)

val converges :
  ?export:Step.export -> ?max_steps:int -> Spp.Instance.t -> Scheduler.t -> bool
(** True iff {!run} stops with {!Quiescent}. *)
