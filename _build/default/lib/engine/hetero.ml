open Spp

type t = Spp.Path.node -> Model.t

let uniform m _ = m
let of_function f = f

let of_list ~default assoc v =
  match List.assoc_opt v assoc with Some m -> m | None -> default

let model_of t v = t v

let validates inst t (entry : Activation.t) =
  match entry.Activation.active with
  | [ v ] -> Model.validates inst (t v) entry
  | _ -> false

let round_robin inst t =
  let cycle =
    List.concat_map
      (fun v ->
        let m = t v in
        let count =
          match m.Model.msg with
          | Model.M_one -> Activation.Finite 1
          | Model.M_some | Model.M_forced | Model.M_all -> Activation.All
        in
        let chans = Model.required_channels inst v in
        match m.Model.nbr with
        | Model.N_one -> (
          let chans =
            if chans = [] then
              List.map (fun u -> Channel.id ~src:u ~dst:v) (Instance.neighbors inst v)
            else chans
          in
          match chans with
          | [] -> [ Activation.single v [] ]
          | chans ->
            List.map (fun c -> Activation.single v [ Activation.read ~count c ]) chans)
        | Model.N_multi | Model.N_every ->
          [ Activation.single v (List.map (fun c -> Activation.read ~count c) chans) ])
      (Instance.nodes inst)
  in
  let arr = Array.of_list cycle in
  {
    Scheduler.entries = Seq.unfold (fun i -> Some (arr.(i mod Array.length arr), i + 1)) 0;
    period = Some (Array.length arr);
    description = "round-robin/heterogeneous";
  }

let describe inst t =
  String.concat ", "
    (List.map
       (fun v -> Printf.sprintf "%s:%s" (Instance.name inst v) (Model.to_string (t v)))
       (Instance.nodes inst))
