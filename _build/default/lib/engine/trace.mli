(** Recorded executions: the activation entries applied, the resulting
    states, and pretty-printing in the style of the paper's appendix tables
    (t / U(t) / π_{U(t)}(t)). *)

type step = { index : int; entry : Activation.t; outcome : Step.outcome }
(** [index] starts at 1, as in the paper's tables. *)

type t

val instance : t -> Spp.Instance.t
val initial : t -> State.t
val steps : t -> step list
val final : t -> State.t
val length : t -> int

val make : Spp.Instance.t -> State.t -> step list -> t
(** [make inst init steps]: [steps] in execution order. *)

val assignments : ?include_initial:bool -> t -> Spp.Assignment.t list
(** The sequence of path assignments π(t); [include_initial] (default
    [false]) prepends π(0). *)

val active_rows : t -> (Spp.Path.node * Spp.Path.t) list
(** For single-active-node steps, the (U(t), π_{U(t)}(t)) pairs of the
    paper's tables; multi-node steps contribute one pair per active node. *)

val row_strings : t -> (string * string) list
(** {!active_rows} rendered with node names and compact paths. *)

val paper_table : t -> string
(** The appendix-style three-line table. *)

val pp : Format.formatter -> t -> unit
