(** Deciding whether a model can induce a given path-assignment sequence
    (up to a realization relation), by reachability in the product of the
    bounded state graph with the sequence-matching automaton.

    This machine-checks the paper's negative results: e.g. the REO
    execution of Ex. A.3 is {e provably} not exactly realizable in R1O
    (Prop. 3.10) because no R1O schedule reaches the end of the target
    sequence, while a subsequence realization is found constructively. *)

type result =
  | Realizable of Engine.Activation.t list
      (** a schedule of the model inducing the target (at the level asked) *)
  | Impossible  (** exhaustive over the bounded space *)
  | Unknown of string  (** bounded exploration was pruned or truncated *)

type termination =
  | Prefix  (** only the finite prefix must be induced *)
  | Forever
      (** the target is a converged limit: after its last element the
          assignment must remain fixed under some fair continuation.  This
          is the reading needed for Prop. 3.10 (Ex. A.3), where fairness
          eventually forces R1O to process the queued announcement and
          deviate. *)

val realizable :
  ?config:Explore.config ->
  ?termination:termination ->
  Spp.Instance.t ->
  Engine.Model.t ->
  Realization.Relation.level ->
  target:Spp.Assignment.t list ->
  result
(** [termination] defaults to [Prefix].  [target] must include the initial
    assignment π(0) as its first element.  For
    {!Realization.Relation.Oscillation} the answer is about inducing the
    target as a subsequence (the weakest per-trace reading). *)

val pp_result : Format.formatter -> result -> unit
