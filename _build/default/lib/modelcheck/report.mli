(** One-stop analysis report for an SPP instance: structure, solvability,
    dispute wheels, and per-model convergence verdicts — the summary a
    network operator or protocol designer would ask for first. *)

type verdict_summary = {
  model : Engine.Model.t;
  verdict : string;  (** "oscillates" / "converges" / "unknown (...)" *)
  reachable_solutions : int option;
      (** populated when the verdict is exhaustive *)
}

type t = {
  nodes : int;
  edges : int;
  permitted_paths : int;
  solutions : int;
  dispute_wheel : Spp.Dispute.wheel option;
  constructive : Spp.Assignment.t option;
  verdicts : verdict_summary list;
}

val analyze :
  ?models:Engine.Model.t list ->
  ?config:Explore.config ->
  ?domains:int ->
  ?metrics:Engine.Metrics.t ->
  Spp.Instance.t ->
  t
(** [models] defaults to the named families R1O, RMS, REA (one
    message-passing, one queueing, one polling model).  [config] defaults
    to a small budget (channel bound 3, 20k states) so reports terminate
    promptly on instances of any size, reporting "unknown" where the
    budget does not suffice.  [domains]/[metrics] are forwarded to the
    underlying explorations. *)

val to_string : Spp.Instance.t -> t -> string
