open Engine
open Realization

type status = Verified | Skipped of string | Failed of string

type entry = { fact : string; evidence : string; status : status }

let model s = Option.get (Model.of_string s)

let pi_seq inst entries =
  Trace.assignments ~include_initial:true (Executor.run_entries inst entries)

let check_positive (f : Facts.positive) ~seeds =
  let name =
    Fmt.str "%a realizes %a (%s) [%s]" Model.pp f.Facts.realizer Model.pp
      f.Facts.realized
      (Relation.to_string f.Facts.level)
      f.Facts.source
  in
  match Transform.route ~source:f.Facts.realized ~target:f.Facts.realizer with
  | None -> { fact = name; evidence = "constructive route"; status = Failed "no route" }
  | Some path ->
    let level = Transform.path_level path in
    if Relation.compare level f.Facts.level < 0 then
      { fact = name; evidence = "constructive route"; status = Failed "route too weak" }
    else begin
      let ok = ref true in
      List.iter
        (fun inst ->
          List.iter
            (fun seed ->
              if !ok then begin
                let entries =
                  Scheduler.prefix 25 (Scheduler.random inst f.Facts.realized ~seed)
                in
                let transformed = Transform.apply_path path inst entries in
                if
                  not
                    (List.for_all (Model.validates inst f.Facts.realizer) transformed
                    && Seqcheck.check f.Facts.level ~original:(pi_seq inst entries)
                         ~realized:(pi_seq inst transformed))
                then ok := false
              end)
            seeds)
        [ Spp.Gadgets.disagree; Spp.Gadgets.fig6 ];
      {
        fact = name;
        evidence =
          Fmt.str "%d-rule transform checked on DISAGREE and FIG6" (List.length path);
        status = (if !ok then Verified else Failed "relation violated on a schedule");
      }
    end

let positives ?(seeds = [ 1; 2 ]) () =
  List.map (check_positive ~seeds) Facts.positives

(* Negative facts: map each to its semantic witness. *)
let check_oscillation_separation ~gadget ~gadget_name ~oscillates_in ?scripted
    (f : Facts.negative) ~deep =
  let name =
    Fmt.str "%a cannot preserve oscillations of %a [%s]" Model.pp f.Facts.non_realizer
      Model.pp f.Facts.target f.Facts.why
  in
  let slow =
    (* exhaustive FIG6 checks for R1A and RMA take tens of seconds *)
    gadget_name = "FIG6"
    && List.mem (Model.to_string f.Facts.non_realizer) [ "R1A"; "RMA" ]
  in
  if slow && not deep then
    {
      fact = name;
      evidence = Fmt.str "exhaustive check of %s (deep)" gadget_name;
      status = Skipped "slow exhaustive check; pass ~deep:true";
    }
  else begin
    let can_oscillate =
      match scripted with
      | Some (prefix, cycle) ->
        (* A concrete fair oscillation schedule beats re-deriving one
           exhaustively (FIG6's full REO state space takes minutes). *)
        List.for_all (Model.validates gadget oscillates_in) (prefix @ cycle)
        &&
        let r =
          Executor.run ~max_steps:500 gadget (Scheduler.prefixed prefix cycle)
        in
        (match r.Executor.stop with Executor.Cycle _ -> true | _ -> false)
      | None -> (
        match Oscillation.analyze gadget oscillates_in with
        | Oscillation.Oscillates w -> Oscillation.verify_witness gadget oscillates_in w
        | _ -> false)
    in
    let cannot =
      match Oscillation.analyze gadget f.Facts.non_realizer with
      | Oscillation.Converges -> true
      | _ -> false
    in
    {
      fact = name;
      evidence =
        Fmt.str "%s oscillates in %a (verified witness) but provably converges in %a"
          gadget_name Model.pp oscillates_in Model.pp f.Facts.non_realizer;
      status =
        (if can_oscillate && cannot then Verified
         else Failed (Fmt.str "oscillation %b / convergence %b" can_oscillate cannot));
    }
  end

let poll1 inst c =
  let v = Spp.Gadgets.node inst c in
  Activation.single v
    (List.map
       (fun ch -> Activation.read ~count:(Activation.Finite 1) ch)
       (Model.required_channels inst v))

let check_refutation ~gadget ~entries ~level ~termination (f : Facts.negative) =
  let name =
    Fmt.str "%a cannot realize %a at %s [%s]" Model.pp f.Facts.non_realizer Model.pp
      f.Facts.target
      (Relation.to_string f.Facts.at_level)
      f.Facts.why
  in
  let target = pi_seq gadget entries in
  let r = Refute.realizable ~termination gadget f.Facts.non_realizer level ~target in
  {
    fact = name;
    evidence = "exhaustive realizability refutation on the appendix execution";
    status =
      (match r with
      | Refute.Impossible -> Verified
      | Refute.Realizable _ -> Failed "a realizing schedule exists"
      | Refute.Unknown reason -> Failed reason);
  }

let negatives ?(deep = false) () =
  List.map
    (fun (f : Facts.negative) ->
      match (f.Facts.why, Model.to_string f.Facts.target) with
      | w, _ when String.length w >= 8 && String.sub w 0 8 = "Thm. 3.8" ->
        check_oscillation_separation ~gadget:Spp.Gadgets.disagree ~gadget_name:"DISAGREE"
          ~oscillates_in:(model "R1O") f ~deep
      | w, _ when String.length w >= 8 && String.sub w 0 8 = "Thm. 3.9" ->
        (* FIG6 oscillates in REO and REF: use the paper's scripted
           schedule (Ex. A.2) as the witness. *)
        let inst = Spp.Gadgets.fig6 in
        let prefix =
          List.map (poll1 inst)
            [ 'd'; 'x'; 'a'; 'u'; 'v'; 'y'; 'a'; 'u'; 'v'; 'z'; 'a'; 'v'; 'u' ]
        in
        let cycle = List.map (poll1 inst) [ 'v'; 'u'; 'a'; 'x'; 'y'; 'z'; 'd' ] in
        check_oscillation_separation ~gadget:inst ~gadget_name:"FIG6"
          ~oscillates_in:f.Facts.target ~scripted:(prefix, cycle) f ~deep
      | w, _ when String.length w >= 10 && String.sub w 0 10 = "Prop. 3.10" ->
        let inst = Spp.Gadgets.fig7 in
        check_refutation ~gadget:inst
          ~entries:(List.map (poll1 inst) [ 'd'; 'b'; 'u'; 'v'; 'a'; 'u'; 'v'; 's'; 's'; 's' ])
          ~level:Relation.Exact ~termination:Refute.Forever f
      | w, _ when String.length w >= 10 && String.sub w 0 10 = "Prop. 3.11" ->
        let inst = Spp.Gadgets.fig8 in
        check_refutation ~gadget:inst
          ~entries:
            (List.map
               (fun c -> Activation.poll_all inst (Spp.Gadgets.node inst c))
               [ 'd'; 'a'; 'u'; 'b'; 'u'; 's' ])
          ~level:Relation.Repetition ~termination:Refute.Prefix f
      | w, _ when String.length w >= 10 && String.sub w 0 10 = "Prop. 3.12" ->
        let inst = Spp.Gadgets.fig9 in
        check_refutation ~gadget:inst
          ~entries:
            (List.map
               (fun c -> Activation.poll_all inst (Spp.Gadgets.node inst c))
               [ 'd'; 'b'; 'c'; 'x'; 's'; 'a'; 'c'; 's' ])
          ~level:Relation.Exact ~termination:Refute.Prefix f
      | w, _ when String.length w >= 10 && String.sub w 0 10 = "Prop. 3.13" ->
        (* Same execution, which is also an REO sequence; refute exactness
           in R1S. *)
        let inst = Spp.Gadgets.fig9 in
        check_refutation ~gadget:inst
          ~entries:
            (List.map
               (fun c -> Activation.poll_all inst (Spp.Gadgets.node inst c))
               [ 'd'; 'b'; 'c'; 'x'; 's'; 'a'; 'c'; 's' ])
          ~level:Relation.Exact ~termination:Refute.Prefix f
      | w, _ ->
        {
          fact = w;
          evidence = "";
          status = Failed (Fmt.str "no audit procedure for %s" w);
        })
    Facts.negatives

let summary entries =
  let count p = List.length (List.filter p entries) in
  let verified = count (fun e -> e.status = Verified) in
  let skipped = count (fun e -> match e.status with Skipped _ -> true | _ -> false) in
  let failed = count (fun e -> match e.status with Failed _ -> true | _ -> false) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Fmt.str "%d facts audited: %d verified, %d skipped, %d failed\n"
       (List.length entries) verified skipped failed);
  List.iter
    (fun e ->
      match e.status with
      | Verified -> ()
      | Skipped reason -> Buffer.add_string buf (Fmt.str "  SKIPPED %s (%s)\n" e.fact reason)
      | Failed reason -> Buffer.add_string buf (Fmt.str "  FAILED  %s (%s)\n" e.fact reason))
    entries;
  Buffer.contents buf
