open Engine

let quiescent_assignments ?config ?domains inst model =
  let graph = Explore.explore ?config ?domains inst model in
  let assignments =
    Array.to_list graph.Explore.states
    |> List.filter (State.is_quiescent inst)
    |> List.map (State.assignment inst)
  in
  let rec dedupe = function
    | [] -> []
    | a :: rest ->
      a :: dedupe (List.filter (fun b -> not (Spp.Assignment.equal a b)) rest)
  in
  List.sort Spp.Assignment.compare (dedupe assignments)

let reachable_solutions ?config ?domains inst model =
  List.filter (Spp.Assignment.is_solution inst)
    (quiescent_assignments ?config ?domains inst model)

let stale_quiescent_assignments ?config ?domains inst model =
  List.filter
    (fun a -> not (Spp.Assignment.is_solution inst a))
    (quiescent_assignments ?config ?domains inst model)

let solution_count ?config ?domains inst model =
  List.length (reachable_solutions ?config ?domains inst model)
