(** Strongly connected components (iterative Tarjan). *)

val tarjan : int -> (int -> int list) -> int array * int
(** [tarjan n adj] returns [(comp, count)]: the component id of each node
    (components numbered in reverse topological order) and their number. *)
