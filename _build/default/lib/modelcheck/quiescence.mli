(** Which stable solutions are actually reachable under a model?

    A solvable instance may have several stable solutions (DISAGREE has
    two); which ones fair executions can end in depends on the
    communication model and schedule.  This module enumerates the quiescent
    states of the bounded state graph and reports the distinct stable
    assignments they carry. *)

val reachable_solutions :
  ?config:Explore.config ->
  ?domains:int ->
  Spp.Instance.t ->
  Engine.Model.t ->
  Spp.Assignment.t list
(** Distinct stable solutions carried by reachable quiescent states.  Order
    is deterministic. *)

val stale_quiescent_assignments :
  ?config:Explore.config ->
  ?domains:int ->
  Spp.Instance.t ->
  Engine.Model.t ->
  Spp.Assignment.t list
(** Distinct assignments of reachable quiescent states that are {e not}
    stable solutions.  Such states exist only under unreliable models: a
    final announcement was dropped and never re-sent, which Def. 2.4's
    fairness condition excludes in the limit — they are dead ends of unfair
    executions, not convergence points. *)

val solution_count :
  ?config:Explore.config -> ?domains:int -> Spp.Instance.t -> Engine.Model.t -> int
