let tarjan n adj =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let counter = ref 0 and n_comps = ref 0 in
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      (* call stack of (node, remaining successors) *)
      let call = ref [ (root, ref (adj root)) ] in
      index.(root) <- !counter;
      lowlink.(root) <- !counter;
      incr counter;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !call <> [] do
        match !call with
        | [] -> ()
        | (v, succs) :: rest -> (
          match !succs with
          | w :: more ->
            succs := more;
            if index.(w) = -1 then begin
              index.(w) <- !counter;
              lowlink.(w) <- !counter;
              incr counter;
              stack := w :: !stack;
              on_stack.(w) <- true;
              call := (w, ref (adj w)) :: !call
            end
            else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
          | [] ->
            if lowlink.(v) = index.(v) then begin
              let rec pop () =
                match !stack with
                | w :: rest ->
                  stack := rest;
                  on_stack.(w) <- false;
                  comp.(w) <- !n_comps;
                  if w <> v then pop ()
                | [] -> assert false
              in
              pop ();
              incr n_comps
            end;
            call := rest;
            (match rest with
            | (u, _) :: _ -> lowlink.(u) <- min lowlink.(u) lowlink.(v)
            | [] -> ()))
      done
    end
  done;
  (comp, !n_comps)

