open Engine

type config = { channel_bound : int; max_states : int }

let default_config = { channel_bound = 4; max_states = 200_000 }

type edge = { dst : int; label : Enumerate.labeled }

type graph = {
  states : State.t array;
  adjacency : edge list array;
  pruned : bool;
  truncated : bool;
}

module StateTbl = Hashtbl.Make (struct
  type t = State.t

  let equal = State.equal
  let hash = State.hash
end)

(* For reliable polling models (msg = All, no drops) only the newest message
   in a channel can ever become a known route, so collapsing every queue to
   its last element is an exact bisimulation and shrinks the state space
   dramatically. *)
let collapse_state model st =
  if model.Model.rel = Model.Reliable && model.Model.msg = Model.M_all then begin
    let chans = State.channels st in
    let collapsed =
      Channel.Map.map
        (fun msgs -> match List.rev msgs with [] -> [] | last :: _ -> [ last ])
        chans
    in
    State.with_channels st collapsed
  end
  else st

(* Receiver-relevance projection: a route r in channel (u, v) (or already
   known as rho_v((u,v))) can only ever influence the execution through the
   candidate v·r, so whenever that extension is not permitted at v the value
   of r is observationally equivalent to epsilon.  Projecting such values to
   epsilon merges states with identical future behavior.  Message *counts*
   are preserved (an epsilon message still occupies a queue slot), so the f
   and g bookkeeping is untouched. *)
let project_state inst st =
  let relevant v r =
    (not (Spp.Path.is_epsilon r))
    && (not (Spp.Path.contains v r))
    && Spp.Instance.is_permitted inst v (Spp.Path.extend v r)
  in
  let st =
    List.fold_left
      (fun acc ((c : Channel.id), r) ->
        if relevant c.Channel.dst r then acc else State.with_rho acc c Spp.Path.epsilon)
      st (State.rho_bindings st)
  in
  let projected_chans =
    Channel.Map.mapi
      (fun (c : Channel.id) msgs ->
        List.map (fun r -> if relevant c.Channel.dst r then r else Spp.Path.epsilon) msgs)
      (State.channels st)
  in
  State.with_channels st projected_chans

let explore_with ?(config = default_config) inst ~successors ~collapse =
  let index = StateTbl.create 1024 in
  let states = ref [] and n_states = ref 0 in
  let adjacency : (int, edge list) Hashtbl.t = Hashtbl.create 1024 in
  let pruned = ref false and truncated = ref false in
  let queue = Queue.create () in
  let intern st =
    match StateTbl.find_opt index st with
    | Some i -> (i, false)
    | None ->
      let i = !n_states in
      StateTbl.add index st i;
      states := st :: !states;
      incr n_states;
      (i, true)
  in
  let init = State.initial inst in
  let i0, _ = intern init in
  Queue.add (i0, init) queue;
  while not (Queue.is_empty queue) do
    let i, st = Queue.pop queue in
    if !n_states > config.max_states then begin
      truncated := true;
      Queue.clear queue
    end
    else begin
      let edges =
        List.filter_map
          (fun (labeled : Enumerate.labeled) ->
            let outcome = Step.apply inst st labeled.Enumerate.entry in
            let st' = project_state inst (collapse outcome.Step.state) in
            if Channel.max_occupancy (State.channels st') > config.channel_bound then begin
              pruned := true;
              None
            end
            else begin
              let j, fresh = intern st' in
              if fresh then Queue.add (j, st') queue;
              Some { dst = j; label = labeled }
            end)
          (successors st)
      in
      Hashtbl.replace adjacency i edges
    end
  done;
  let states_arr = Array.of_list (List.rev !states) in
  let adj = Array.make (Array.length states_arr) [] in
  Hashtbl.iter (fun i es -> if i < Array.length adj then adj.(i) <- es) adjacency;
  { states = states_arr; adjacency = adj; pruned = !pruned; truncated = !truncated }

let explore ?config inst model =
  explore_with ?config inst
    ~successors:(Enumerate.successors inst model)
    ~collapse:(collapse_state model)
