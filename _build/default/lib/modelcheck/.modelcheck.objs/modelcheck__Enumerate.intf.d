lib/modelcheck/enumerate.mli: Engine Spp
