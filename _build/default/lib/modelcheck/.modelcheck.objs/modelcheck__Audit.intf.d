lib/modelcheck/audit.mli:
