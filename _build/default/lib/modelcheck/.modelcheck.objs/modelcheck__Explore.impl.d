lib/modelcheck/explore.ml: Array Atomic Channel Condition Domain Engine Enumerate Hashtbl List Metrics Model Mutex Queue Spp State Step String Sys
