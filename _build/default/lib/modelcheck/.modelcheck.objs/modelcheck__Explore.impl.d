lib/modelcheck/explore.ml: Array Channel Engine Enumerate Hashtbl List Model Queue Spp State Step
