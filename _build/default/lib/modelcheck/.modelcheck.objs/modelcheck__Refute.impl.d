lib/modelcheck/refute.ml: Activation Array Assignment Channel Engine Enumerate Explore Fmt Hashtbl Instance List Option Queue Realization Scc Set Spp State Step
