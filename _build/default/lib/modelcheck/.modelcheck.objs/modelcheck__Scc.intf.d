lib/modelcheck/scc.mli:
