lib/modelcheck/report.ml: Assignment Buffer Dispute Engine Explore Fmt Instance List Model Oscillation Quiescence Solver Spp
