lib/modelcheck/oscillation.mli: Engine Explore Format Spp
