lib/modelcheck/oscillation.ml: Activation Array Channel Engine Enumerate Explore Fmt Hashtbl Hetero Instance List Metrics Model Option Path Queue Scc Set Spp State Step
