lib/modelcheck/report.mli: Engine Explore Spp
