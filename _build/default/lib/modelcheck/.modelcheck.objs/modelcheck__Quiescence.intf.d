lib/modelcheck/quiescence.mli: Engine Explore Spp
