lib/modelcheck/refute.mli: Engine Explore Format Realization Spp
