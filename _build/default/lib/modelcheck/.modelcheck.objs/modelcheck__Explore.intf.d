lib/modelcheck/explore.mli: Engine Enumerate Spp
