lib/modelcheck/scc.ml: Array
