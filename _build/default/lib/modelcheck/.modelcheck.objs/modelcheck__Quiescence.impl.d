lib/modelcheck/quiescence.ml: Array Engine Explore List Spp State
