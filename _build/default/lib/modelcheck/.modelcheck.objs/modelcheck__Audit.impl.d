lib/modelcheck/audit.ml: Activation Buffer Engine Executor Facts Fmt List Model Option Oscillation Realization Refute Relation Scheduler Seqcheck Spp String Trace Transform
