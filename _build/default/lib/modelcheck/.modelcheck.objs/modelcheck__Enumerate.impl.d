lib/modelcheck/enumerate.ml: Activation Channel Engine Fun Instance List Model Option Spp
