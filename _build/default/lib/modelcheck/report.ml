open Engine
open Spp

type verdict_summary = {
  model : Model.t;
  verdict : string;
  reachable_solutions : int option;
}

type t = {
  nodes : int;
  edges : int;
  permitted_paths : int;
  solutions : int;
  dispute_wheel : Dispute.wheel option;
  constructive : Assignment.t option;
  verdicts : verdict_summary list;
}

let default_models =
  List.filter_map Model.of_string [ "R1O"; "RMS"; "REA" ]

(* Reports must terminate promptly on instances of any size: a modest state
   budget turns intractable verdicts into honest "unknown"s. *)
let default_report_config = { Explore.channel_bound = 3; max_states = 20_000 }

(* Exhaustive verdicts are affordable only on small instances: the
   per-state successor enumeration is exponential in node degree.  Larger
   instances get fair-run evidence instead. *)
let exhaustive_feasible inst =
  List.length (Instance.channels inst) <= 14
  && List.for_all (fun v -> List.length (Instance.neighbors inst v) <= 4) (Instance.nodes inst)

let analyze ?(models = default_models) ?(config = default_report_config) ?domains
    ?metrics inst =
  let verdicts =
    List.map
      (fun model ->
        if exhaustive_feasible inst then begin
          let v = Oscillation.analyze ~config ?domains ?metrics inst model in
          let reachable =
            match v with
            | Oscillation.Unknown _ -> None
            | Oscillation.Oscillates _ | Oscillation.Converges ->
              Some (Quiescence.solution_count ~config ?domains inst model)
          in
          {
            model;
            verdict = Fmt.str "%a" Oscillation.pp_verdict v;
            reachable_solutions = reachable;
          }
        end
        else begin
          let r = Engine.Executor.run inst (Engine.Scheduler.round_robin inst model) in
          {
            model;
            verdict =
              Fmt.str "fair round-robin run: %a (instance too large for exhaustive analysis)"
                Engine.Executor.pp_stop r.Engine.Executor.stop;
            reachable_solutions = None;
          }
        end)
      models
  in
  {
    nodes = Instance.size inst;
    edges = List.length (Instance.edges inst);
    permitted_paths = List.length (Instance.all_permitted inst) - 1;
    solutions = Solver.count_solutions inst;
    dispute_wheel = Dispute.find inst;
    constructive = Solver.constructive inst;
    verdicts;
  }

let to_string inst t =
  let buf = Buffer.create 1024 in
  let pf fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  pf "%d nodes, %d edges, %d permitted paths\n" t.nodes t.edges t.permitted_paths;
  pf "stable solutions: %d\n" t.solutions;
  (match t.dispute_wheel with
  | None -> pf "dispute wheel: none (every fair execution converges in every model)\n"
  | Some w -> pf "%a\n" (Dispute.pp_wheel inst) w);
  (match t.constructive with
  | Some a ->
    pf "greedy construction succeeds: %a\n" (Assignment.pp inst) a
  | None -> pf "greedy construction fails (instance is not dispute-wheel-free)\n");
  List.iter
    (fun v ->
      pf "under %s: %s%s\n" (Model.to_string v.model) v.verdict
        (match v.reachable_solutions with
        | Some n -> Fmt.str "; %d reachable stable solution(s)" n
        | None -> ""))
    t.verdicts;
  Buffer.contents buf
