(** Self-audit: machine evidence for every foundational fact of Sec. 3.

    Each positive fact is re-checked by running its constructive transform
    on concrete schedules and testing the claimed trace relation; each
    negative fact is re-checked semantically on the paper's witness gadget
    (oscillation witnesses, exhaustive convergence, or realizability
    refutation).  The bench prints the resulting scoreboard; a clean audit
    means the fact base fed to the {!Realization.Closure} engine is not
    just transcribed from the paper but independently validated. *)

type status = Verified | Skipped of string | Failed of string

type entry = { fact : string; evidence : string; status : status }

val positives : ?seeds:int list -> unit -> entry list
(** One entry per positive foundational fact: finds a constructive route
    of at least the claimed level and property-checks it on DISAGREE and
    FIG6 schedules. *)

val negatives : ?deep:bool -> unit -> entry list
(** One entry per negative fact.  [deep] (default false) also runs the two
    multi-minute exhaustive checks (FIG6 under R1A and RMA); otherwise they
    are reported as skipped. *)

val summary : entry list -> string
