(** Explicit-state exploration of an instance under a communication model.

    Channels are bounded: any write that would push a channel beyond
    [channel_bound] messages prunes that edge (and the result is flagged),
    so "no oscillation found" verdicts are exhaustive only over the bounded
    space — see DESIGN.md.  Oscillation witnesses are sound regardless. *)

type config = { channel_bound : int; max_states : int }

val default_config : config
(** channel bound 4, at most 200_000 states. *)

type edge = { dst : int; label : Enumerate.labeled }

type graph = {
  states : Engine.State.t array;  (** index 0 is the initial state *)
  adjacency : edge list array;
  pruned : bool;  (** some write hit the channel bound *)
  truncated : bool;  (** exploration stopped at [max_states] *)
}

val collapse_state : Engine.Model.t -> Engine.State.t -> Engine.State.t
(** The last-message-only channel reduction, exact for reliable polling
    models (identity otherwise). *)

val explore : ?config:config -> Spp.Instance.t -> Engine.Model.t -> graph

val explore_with :
  ?config:config ->
  Spp.Instance.t ->
  successors:(Engine.State.t -> Enumerate.labeled list) ->
  collapse:(Engine.State.t -> Engine.State.t) ->
  graph
(** Generalized entry point (heterogeneous models, custom reductions);
    [collapse] must be an exact abstraction of the successor relation. *)
