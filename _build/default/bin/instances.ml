(* Shared instance selection for the command-line tools. *)

let catalogue () =
  Spp.Gadgets.all_named ()
  @ [ ("SHORTEST-PATHS", Spp.Gadgets.shortest_paths ~n:5) ]

let find name =
  let up = String.uppercase_ascii name in
  match List.assoc_opt up (catalogue ()) with
  | Some inst -> Ok inst
  | None -> (
    (* bgp:<seed> and random:<seed> are generated families. *)
    match String.split_on_char ':' (String.lowercase_ascii name) with
    | [ "bgp"; seed ] -> (
      match int_of_string_opt seed with
      | Some seed ->
        let topo = Bgp.Topology.generate { Bgp.Topology.default_config with seed } in
        Ok (Bgp.Policy.compile topo ~dest:(Bgp.Topology.size topo - 1))
      | None -> Error (`Msg "bgp:<seed> expects an integer seed"))
    | [ "random"; seed ] -> (
      match int_of_string_opt seed with
      | Some seed -> Ok (Spp.Generator.instance { Spp.Generator.default with seed })
      | None -> Error (`Msg "random:<seed> expects an integer seed"))
    | "file" :: rest -> (
      match Spp.Dsl.parse_file (String.concat ":" rest) with
      | Ok inst -> Ok inst
      | Error e -> Error (`Msg e))
    | _ ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown instance %S (try %s, bgp:<seed>, random:<seed> or file:<path>)" name
             (String.concat ", " (List.map fst (catalogue ()))))))

let names () =
  List.map fst (catalogue ()) @ [ "bgp:<seed>"; "random:<seed>"; "file:<path>" ]
