(* realization_route: print the constructive realization chain between two
   communication models (Sec. 3.2's proofs as executable rules), optionally
   applying it to a random schedule on a gadget and checking the claimed
   trace relation. *)

open Engine
open Realization
open Cmdliner

let run source_name target_name instance_name seed steps =
  let parse n =
    match Model.of_string (String.uppercase_ascii n) with
    | Some m -> Ok m
    | None -> Error (Printf.sprintf "unknown model %S" n)
  in
  match (parse source_name, parse target_name) with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok source, Ok target -> (
    match Transform.route ~source ~target with
    | None ->
      Format.printf
        "no constructive realization of %a by %a is known (consistent with Figures 3-4)@."
        Model.pp source Model.pp target;
      `Ok ()
    | Some path ->
      Format.printf "%a realizes %a at level: %a@." Model.pp target Model.pp source
        Relation.pp (Transform.path_level path);
      List.iter
        (fun (e : Transform.edge) ->
          Format.printf "  %a --[%a]--> %a@." Model.pp e.Transform.source
            Transform.pp_rule e.Transform.rule Model.pp e.Transform.target)
        path;
      (match Instances.find instance_name with
      | Error (`Msg m) -> Format.printf "(skipping demo: %s)@." m
      | Ok inst ->
        let entries = Scheduler.prefix steps (Scheduler.random inst source ~seed) in
        let transformed = Transform.apply_path path inst entries in
        let seq es =
          Trace.assignments ~include_initial:true (Executor.run_entries inst es)
        in
        let ok =
          Seqcheck.check (Transform.path_level path) ~original:(seq entries)
            ~realized:(seq transformed)
        in
        Format.printf
          "demo on %s: %d source steps -> %d realized steps; relation checked: %b@."
          instance_name (List.length entries) (List.length transformed) ok);
      `Ok ())

let source_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SOURCE" ~doc:"Source model.")

let target_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"TARGET" ~doc:"Target model.")

let instance_arg =
  Arg.(value & opt string "FIG6" & info [ "i"; "instance" ] ~docv:"NAME" ~doc:"Demo instance.")

let seed_arg = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Schedule seed.")
let steps_arg = Arg.(value & opt int 25 & info [ "steps" ] ~doc:"Schedule length.")

let cmd =
  let doc = "constructive realization chains between communication models" in
  Cmd.v
    (Cmd.info "realization_route" ~doc)
    Term.(ret (const run $ source_arg $ target_arg $ instance_arg $ seed_arg $ steps_arg))

let () = exit (Cmd.eval cmd)
