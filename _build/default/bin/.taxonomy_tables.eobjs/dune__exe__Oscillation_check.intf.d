bin/oscillation_check.mli:
