bin/realization_route.mli:
