bin/realization_route.ml: Arg Cmd Cmdliner Engine Executor Format Instances List Model Printf Realization Relation Scheduler Seqcheck String Term Trace Transform
