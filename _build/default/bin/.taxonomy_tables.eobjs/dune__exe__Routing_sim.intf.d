bin/routing_sim.mli:
