bin/taxonomy_tables.ml: Engine Realization
