bin/oscillation_check.ml: Arg Cmd Cmdliner Engine Format Instances List Metrics Model Modelcheck Printf String Term Unix
