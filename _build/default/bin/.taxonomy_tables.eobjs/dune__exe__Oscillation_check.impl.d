bin/oscillation_check.ml: Arg Cmd Cmdliner Engine Format Instances List Model Modelcheck Printf String Term Unix
