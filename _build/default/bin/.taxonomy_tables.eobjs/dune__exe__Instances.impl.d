bin/instances.ml: Bgp List Printf Spp String
