bin/taxonomy_tables.mli:
