bin/routing_sim.ml: Arg Cmd Cmdliner Engine Executor Format Instances List Model Printf Replay Scheduler Spp State String Term Trace
