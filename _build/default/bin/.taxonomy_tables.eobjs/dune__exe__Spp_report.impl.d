bin/spp_report.ml: Arg Cmd Cmdliner Engine Format Instances List Model Modelcheck Printf Spp String Term
