bin/spp_report.mli:
